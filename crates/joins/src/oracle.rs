//! A naive host-side hash join used as the correctness oracle for every
//! device implementation. No device costs are charged; output rows come
//! back sorted so order-insensitive comparison is one `assert_eq!`.

use columnar::Relation;
use std::collections::HashMap;

/// All matching rows of the inner equi-join `r ⋈ s`, widened to `i64` and
/// sorted: each row is `[key, r payloads…, s payloads…]`.
pub fn hash_join_oracle(r: &Relation, s: &Relation) -> Vec<Vec<i64>> {
    let mut by_key: HashMap<i64, Vec<usize>> = HashMap::new();
    for i in 0..r.len() {
        by_key.entry(r.key().value(i)).or_default().push(i);
    }
    let mut rows = Vec::new();
    for j in 0..s.len() {
        let k = s.key().value(j);
        if let Some(ris) = by_key.get(&k) {
            for &i in ris {
                let mut row = Vec::with_capacity(1 + r.num_payloads() + s.num_payloads());
                row.push(k);
                row.extend(r.payloads().iter().map(|c| c.value(i)));
                row.extend(s.payloads().iter().map(|c| c.value(j)));
                rows.push(row);
            }
        }
    }
    rows.sort_unstable();
    rows
}

/// Reference results for the non-inner join kinds (probe-side semantics,
/// see [`crate::kinds::JoinKind`]): semi/anti rows are `[key, s
/// payloads...]`; outer rows are `[key, r payloads (type-MIN when
/// unmatched)..., s payloads...]`. Rows come back sorted.
pub fn join_oracle_kind(r: &Relation, s: &Relation, kind: crate::kinds::JoinKind) -> Vec<Vec<i64>> {
    use crate::kinds::JoinKind;
    let mut by_key: HashMap<i64, Vec<usize>> = HashMap::new();
    for i in 0..r.len() {
        by_key.entry(r.key().value(i)).or_default().push(i);
    }
    let null_of = |c: &columnar::Column| match c.dtype() {
        columnar::DType::I32 => i32::MIN as i64,
        columnar::DType::I64 => i64::MIN,
    };
    let mut rows = Vec::new();
    for j in 0..s.len() {
        let k = s.key().value(j);
        let matches = by_key.get(&k);
        let s_row = || -> Vec<i64> { s.payloads().iter().map(|c| c.value(j)).collect() };
        match kind {
            JoinKind::Inner | JoinKind::Outer => {
                if let Some(ris) = matches {
                    for &i in ris {
                        let mut row = vec![k];
                        row.extend(r.payloads().iter().map(|c| c.value(i)));
                        row.extend(s_row());
                        rows.push(row);
                    }
                } else if kind == JoinKind::Outer {
                    let mut row = vec![k];
                    row.extend(r.payloads().iter().map(null_of));
                    row.extend(s_row());
                    rows.push(row);
                }
            }
            JoinKind::Semi => {
                if matches.is_some() {
                    let mut row = vec![k];
                    row.extend(s_row());
                    rows.push(row);
                }
            }
            JoinKind::Anti => {
                if matches.is_none() {
                    let mut row = vec![k];
                    row.extend(s_row());
                    rows.push(row);
                }
            }
        }
    }
    rows.sort_unstable();
    rows
}

/// Exact output cardinality of `r ⋈ s` without materializing payloads.
pub fn join_cardinality(r: &Relation, s: &Relation) -> usize {
    let mut counts: HashMap<i64, usize> = HashMap::new();
    for i in 0..r.len() {
        *counts.entry(r.key().value(i)).or_insert(0) += 1;
    }
    (0..s.len())
        .map(|j| counts.get(&s.key().value(j)).copied().unwrap_or(0))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use columnar::Column;
    use sim::Device;

    #[test]
    fn oracle_emits_all_pairs() {
        let dev = Device::a100();
        let r = Relation::new(
            "R",
            Column::from_i32(&dev, vec![1, 2, 2], "k"),
            vec![Column::from_i32(&dev, vec![10, 20, 21], "p")],
        );
        let s = Relation::new(
            "S",
            Column::from_i32(&dev, vec![2, 3, 1], "k"),
            vec![Column::from_i64(&dev, vec![200, 300, 100], "q")],
        );
        let rows = hash_join_oracle(&r, &s);
        assert_eq!(
            rows,
            vec![vec![1, 10, 100], vec![2, 20, 200], vec![2, 21, 200],]
        );
        assert_eq!(join_cardinality(&r, &s), 3);
    }

    #[test]
    fn empty_sides() {
        let dev = Device::a100();
        let r = Relation::new("R", Column::from_i32(&dev, vec![], "k"), vec![]);
        let s = Relation::new("S", Column::from_i32(&dev, vec![1], "k"), vec![]);
        assert!(hash_join_oracle(&r, &s).is_empty());
        assert_eq!(join_cardinality(&r, &s), 0);
    }
}
