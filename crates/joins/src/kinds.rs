//! Join kinds beyond the paper's inner equi-join: probe-side semi, anti and
//! outer joins.
//!
//! These matter for the paper's own workloads — J5 is extracted from TPC-DS
//! Q95, whose plan is an EXISTS (semi) join — and they compose with both
//! materialization patterns: the kind adjustment transforms the matched
//! triple `(key, ID_R, ID_S)` *before* payload materialization, so GFTR's
//! clustered gathers work unchanged. Unmatched probe rows in an outer join
//! gather R payloads as the type's null sentinel (`i32::MIN` / `i64::MIN`)
//! through [`primitives::gather_or`].

use crate::timed_phase;
use columnar::ColumnElement;
use primitives::{gather, MatchResult, NULL_ID, STREAM_WARP_INSTR};
use serde::{Deserialize, Serialize};
use sim::{Device, DeviceBuffer, SimTime};

/// The join semantics, relative to the probe side S.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum JoinKind {
    /// All matching pairs — the paper's setting.
    #[default]
    Inner,
    /// One output row per S row with at least one match (EXISTS).
    Semi,
    /// One output row per S row with no match (NOT EXISTS).
    Anti,
    /// Inner matches plus one row per unmatched S row, R side null.
    Outer,
}

impl JoinKind {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            JoinKind::Inner => "inner",
            JoinKind::Semi => "semi",
            JoinKind::Anti => "anti",
            JoinKind::Outer => "outer",
        }
    }
}

/// The match triple after kind adjustment, ready for materialization.
pub(crate) struct KindAdjusted<K: sim::Element> {
    /// Output key column values.
    pub keys: DeviceBuffer<K>,
    /// Map into the R-side payload source; `NULL_ID` rows gather the null
    /// sentinel. Empty when `materialize_r` is false.
    pub r_map: DeviceBuffer<u32>,
    /// Map into the S-side payload source.
    pub s_map: DeviceBuffer<u32>,
    /// Whether R payloads appear in the output (false for semi/anti).
    pub materialize_r: bool,
    /// Simulated time spent adjusting (add to the match-finding phase).
    pub time: SimTime,
}

/// Mark which S positions appear in a (non-decreasing) match list and
/// return the unmatched ones. One streaming pass, charged.
fn unmatched_positions(dev: &Device, s_idx: &DeviceBuffer<u32>, s_len: usize) -> Vec<u32> {
    let mut matched = vec![false; s_len];
    for &s in s_idx.iter() {
        matched[s as usize] = true;
    }
    let extra: Vec<u32> = (0..s_len as u32)
        .filter(|&i| !matched[i as usize])
        .collect();
    dev.kernel("kind.unmatched_scan")
        .items((s_idx.len() + s_len) as u64, STREAM_WARP_INSTR)
        .seq_read_bytes(s_idx.len() as u64 * 4)
        .seq_write_bytes((s_len / 8) as u64 + extra.len() as u64 * 4)
        .launch();
    extra
}

/// Transform an inner-match triple according to `kind`. `s_keys_src` is the
/// key column in the same ID space as `m.s_idx` (transformed keys for GFTR
/// drivers, original keys for GFUR ones); it supplies the key values of
/// unmatched rows for anti/outer joins.
pub(crate) fn apply_kind<K: ColumnElement>(
    dev: &Device,
    kind: JoinKind,
    m: MatchResult<K>,
    s_keys_src: &DeviceBuffer<K>,
    s_len: usize,
) -> KindAdjusted<K> {
    // Every match-finding kernel emits all matches of one probe row
    // contiguously (probe-major order); in GFUR drivers the values are
    // physical IDs, so they are grouped rather than sorted — which is all
    // the semi-join deduplication below needs.
    let t0 = dev.elapsed();
    match kind {
        JoinKind::Inner => KindAdjusted {
            keys: m.keys,
            r_map: m.r_idx,
            s_map: m.s_idx,
            materialize_r: true,
            time: SimTime::ZERO,
        },
        JoinKind::Semi => {
            // Keep the first match of each S row: s_idx is non-decreasing,
            // so "first" is "differs from predecessor" — one streaming pass
            // plus a compaction gather.
            let keep: Vec<u32> = (0..m.s_idx.len() as u32)
                .filter(|&i| i == 0 || m.s_idx[i as usize] != m.s_idx[i as usize - 1])
                .collect();
            dev.kernel("kind.semi_flags")
                .items(m.s_idx.len() as u64, STREAM_WARP_INSTR)
                .seq_read_bytes(m.s_idx.len() as u64 * 4)
                .seq_write_bytes(keep.len() as u64 * 4)
                .launch();
            let keep = dev.upload(keep, "kind.keep");
            let keys = gather(dev, &m.keys, &keep);
            let s_map = gather(dev, &m.s_idx, &keep);
            KindAdjusted {
                keys,
                r_map: dev.upload(Vec::new(), "kind.empty"),
                s_map,
                materialize_r: false,
                time: dev.elapsed() - t0,
            }
        }
        JoinKind::Anti => {
            let extra = unmatched_positions(dev, &m.s_idx, s_len);
            let s_map = dev.upload(extra, "kind.anti_s");
            let keys = gather(dev, s_keys_src, &s_map);
            KindAdjusted {
                keys,
                r_map: dev.upload(Vec::new(), "kind.empty"),
                s_map,
                materialize_r: false,
                time: dev.elapsed() - t0,
            }
        }
        JoinKind::Outer => {
            let extra = unmatched_positions(dev, &m.s_idx, s_len);
            let extra_buf = dev.upload(extra.clone(), "kind.outer_s");
            let extra_keys = gather(dev, s_keys_src, &extra_buf);
            // Concatenate (one sequential copy of both halves).
            let total = m.keys.len() + extra.len();
            let mut keys = Vec::with_capacity(total);
            keys.extend_from_slice(&m.keys);
            keys.extend_from_slice(&extra_keys);
            let mut r_map = Vec::with_capacity(total);
            r_map.extend_from_slice(&m.r_idx);
            r_map.extend(std::iter::repeat_n(NULL_ID, extra.len()));
            let mut s_map = Vec::with_capacity(total);
            s_map.extend_from_slice(&m.s_idx);
            s_map.extend(extra);
            dev.kernel("kind.outer_concat")
                .items(total as u64, STREAM_WARP_INSTR)
                .seq_read_bytes(total as u64 * (K::SIZE + 8))
                .seq_write_bytes(total as u64 * (K::SIZE + 8))
                .launch();
            KindAdjusted {
                keys: dev.upload(keys, "kind.keys"),
                r_map: dev.upload(r_map, "kind.r_map"),
                s_map: dev.upload(s_map, "kind.s_map"),
                materialize_r: true,
                time: dev.elapsed() - t0,
            }
        }
    }
}

/// Convenience wrapper used by the drivers: run `apply_kind` under the
/// match-finding timer.
pub(crate) fn apply_kind_timed<K: ColumnElement>(
    dev: &Device,
    kind: JoinKind,
    m: MatchResult<K>,
    s_keys_src: &DeviceBuffer<K>,
    s_len: usize,
) -> KindAdjusted<K> {
    let (out, t) = timed_phase(dev, "match_find", || {
        apply_kind(dev, kind, m, s_keys_src, s_len)
    });
    KindAdjusted { time: t, ..out }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim::Device;

    fn sample(dev: &Device) -> (MatchResult<i32>, DeviceBuffer<i32>) {
        // S keys: [5, 9, 5, 7]; R matched s positions 0, 0, 2 (key 5 twice
        // in R) — position 1 (key 9) and 3 (key 7) unmatched.
        let m = MatchResult {
            keys: dev.upload(vec![5i32, 5, 5], "k"),
            r_idx: dev.upload(vec![0u32, 1, 0], "r"),
            s_idx: dev.upload(vec![0u32, 0, 2], "s"),
        };
        let s_keys = dev.upload(vec![5i32, 9, 5, 7], "sk");
        (m, s_keys)
    }

    #[test]
    fn inner_is_identity() {
        let dev = Device::a100();
        let (m, sk) = sample(&dev);
        let a = apply_kind(&dev, JoinKind::Inner, m, &sk, 4);
        assert!(a.materialize_r);
        assert_eq!(a.keys.as_slice(), &[5, 5, 5]);
        assert_eq!(a.r_map.as_slice(), &[0, 1, 0]);
    }

    #[test]
    fn semi_keeps_first_match_per_probe_row() {
        let dev = Device::a100();
        let (m, sk) = sample(&dev);
        let a = apply_kind(&dev, JoinKind::Semi, m, &sk, 4);
        assert!(!a.materialize_r);
        assert_eq!(a.keys.as_slice(), &[5, 5]);
        assert_eq!(a.s_map.as_slice(), &[0, 2]);
    }

    #[test]
    fn anti_emits_unmatched_probe_rows() {
        let dev = Device::a100();
        let (m, sk) = sample(&dev);
        let a = apply_kind(&dev, JoinKind::Anti, m, &sk, 4);
        assert!(!a.materialize_r);
        assert_eq!(a.keys.as_slice(), &[9, 7]);
        assert_eq!(a.s_map.as_slice(), &[1, 3]);
    }

    #[test]
    fn outer_appends_null_padded_rows() {
        let dev = Device::a100();
        let (m, sk) = sample(&dev);
        let a = apply_kind(&dev, JoinKind::Outer, m, &sk, 4);
        assert!(a.materialize_r);
        assert_eq!(a.keys.as_slice(), &[5, 5, 5, 9, 7]);
        assert_eq!(a.r_map.as_slice(), &[0, 1, 0, NULL_ID, NULL_ID]);
        assert_eq!(a.s_map.as_slice(), &[0, 0, 2, 1, 3]);
    }

    #[test]
    fn empty_match_list_edge_cases() {
        let dev = Device::a100();
        let m = MatchResult {
            keys: dev.upload(Vec::<i32>::new(), "k"),
            r_idx: dev.upload(Vec::<u32>::new(), "r"),
            s_idx: dev.upload(Vec::<u32>::new(), "s"),
        };
        let sk = dev.upload(vec![3i32, 4], "sk");
        let a = apply_kind(&dev, JoinKind::Anti, m, &sk, 2);
        assert_eq!(a.keys.as_slice(), &[3, 4]);
    }
}
