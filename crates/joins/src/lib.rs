//! # joins — the paper's join implementations
//!
//! Four GPU join variants around the two transformation strategies (sort,
//! partition) and the two materialization patterns (GFUR, GFTR):
//!
//! | name                        | transform        | materialization | section |
//! |-----------------------------|------------------|-----------------|---------|
//! | [`smj::smj_um`] (SMJ-UM)    | sort (key, ID)   | GFUR, unclustered gathers | 3.1 |
//! | [`smj::smj_om`] (SMJ-OM)    | sort all columns | GFTR, clustered gathers   | 4.2 |
//! | [`phj_um::phj_um`] (PHJ-UM) | bucket-chain partition (key, ID) | GFUR | 3.2 |
//! | [`phj_om::phj_om`] (PHJ-OM) | stable radix partition, all columns | GFTR (or GFUR) | 4.3 |
//!
//! plus the two baselines of the evaluation:
//!
//! * [`nphj::nphj`] — non-partitioned global-hash-table join (cuDF stand-in);
//! * [`cpu::cpu_radix_join`] — a real multi-threaded CPU radix join
//!   (Balkesen et al. stand-in), measured in host wall-clock.
//!
//! All of them consume [`columnar::Relation`]s and produce a [`JoinOutput`]
//! with the materialized result plus per-phase timing and peak memory.
//! [`oracle::hash_join_oracle`] provides the reference results the test
//! suite checks every implementation against, and [`plan`] chains joins into
//! the star-schema pipelines of Figure 16.

pub mod chunked;
pub mod cpu;
pub mod kinds;
pub mod nphj;
pub mod oracle;
pub mod phj_om;
pub mod phj_um;
pub mod plan;
pub mod smj;

pub use kinds::JoinKind;

use columnar::{Column, Relation};
use serde::{Deserialize, Serialize};
use sim::{Device, OpStats, PhaseTimes, SimTime};

/// Which join implementation to run — the paper's four variants plus the
/// two baselines. The short labels (SU/PU/SO/PO) follow Section 5.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Algorithm {
    /// Sort-merge join, unoptimized materialization (GFUR).
    SmjUm,
    /// Sort-merge join, optimized materialization (GFTR).
    SmjOm,
    /// Bucket-chain partitioned hash join, unoptimized materialization.
    PhjUm,
    /// Radix-partitioned hash join, optimized materialization.
    PhjOm,
    /// Radix-partitioned hash join run in GFUR mode (Section 4.3's remark
    /// that the new implementation can also skip payload partitioning).
    PhjOmGfur,
    /// Non-partitioned global hash join (cuDF baseline).
    Nphj,
    /// Multi-threaded CPU radix join (Balkesen et al. baseline).
    CpuRadix,
}

impl Algorithm {
    /// The paper's display name.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::SmjUm => "SMJ-UM",
            Algorithm::SmjOm => "SMJ-OM",
            Algorithm::PhjUm => "PHJ-UM",
            Algorithm::PhjOm => "PHJ-OM",
            Algorithm::PhjOmGfur => "PHJ-OM/GFUR",
            Algorithm::Nphj => "NPHJ",
            Algorithm::CpuRadix => "CPU",
        }
    }

    /// The materialization strategy label (the paper's Section 4.2 split):
    /// `"GFTR"` for gather-from-transformed-relations variants, `"GFUR"`
    /// for gather-from-untransformed-relations, `"CPU"` for the host
    /// baseline.
    pub fn materialization(self) -> &'static str {
        match self {
            Algorithm::SmjOm | Algorithm::PhjOm => "GFTR",
            Algorithm::SmjUm | Algorithm::PhjUm | Algorithm::PhjOmGfur | Algorithm::Nphj => "GFUR",
            Algorithm::CpuRadix => "CPU",
        }
    }

    /// All GPU variants compared throughout Section 5.
    pub const GPU_VARIANTS: [Algorithm; 4] = [
        Algorithm::SmjUm,
        Algorithm::SmjOm,
        Algorithm::PhjUm,
        Algorithm::PhjOm,
    ];
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Pre-allocated output memory, matching the paper's measurement protocol
/// (Section 4.4 assumes "the output relation is already allocated"; Section
/// 5.2.6: "we allocate the majority of the consumed memory before executing
/// the join"). One reservation piece per output column, released right
/// before the real column is written so nothing is double-counted.
pub(crate) struct OutputReservation {
    keys: Option<sim::DeviceBuffer<u32>>,
    r_cols: Vec<Option<sim::DeviceBuffer<u32>>>,
    s_cols: Vec<Option<sim::DeviceBuffer<u32>>>,
}

impl OutputReservation {
    /// Reserve space for `rows` output rows of `r ⋈ s`'s schema.
    pub(crate) fn new(dev: &Device, r: &Relation, s: &Relation, rows: usize) -> Self {
        let piece = |dtype: columnar::DType| {
            Some(dev.alloc::<u32>(
                (rows as u64 * dtype.size() / 4) as usize,
                "output_reservation",
            ))
        };
        OutputReservation {
            keys: piece(r.key().dtype()),
            r_cols: r.payloads().iter().map(|c| piece(c.dtype())).collect(),
            s_cols: s.payloads().iter().map(|c| piece(c.dtype())).collect(),
        }
    }

    /// Release the key column's reservation (call right before the match
    /// keys are written).
    pub(crate) fn release_keys(&mut self) {
        self.keys = None;
    }

    /// Release R payload column `i`'s reservation.
    pub(crate) fn release_r(&mut self, i: usize) {
        self.r_cols[i] = None;
    }

    /// Release S payload column `i`'s reservation.
    pub(crate) fn release_s(&mut self, i: usize) {
        self.s_cols[i] = None;
    }
}

/// The output-size estimate used for the reservation: the caller's explicit
/// expectation, else the PK-FK default `|T| = |S|` (the paper's setting).
pub(crate) fn estimated_out_rows(config: &JoinConfig, s: &Relation) -> usize {
    config.expected_out_rows.unwrap_or_else(|| s.len())
}

/// Tuning knobs shared by the join implementations.
#[derive(Debug, Clone)]
pub struct JoinConfig {
    /// Declare the build side (R) duplicate-free — the PK-FK case the paper
    /// focuses on. Enables the single-bounds-pass merge join.
    pub unique_build: bool,
    /// Radix bits for the partitioned joins; `None` sizes partitions to the
    /// device's shared memory (the paper's 15-16 bits at 2^27 tuples).
    pub radix_bits: Option<u32>,
    /// Bucket capacity (tuples) for the bucket-chain partitioner of PHJ-UM;
    /// `0` (the default) sizes buckets to the shared-memory hash table.
    pub bucket_tuples: usize,
    /// Seed for the simulated block scheduler — different seeds expose
    /// PHJ-UM's non-deterministic partition layouts (Section 4.3).
    pub scheduler_seed: u64,
    /// Expected output cardinality, used to pre-allocate the output
    /// relation (the paper's protocol). `None` assumes the PK-FK case
    /// `|T| = |S|`.
    pub expected_out_rows: Option<usize>,
    /// Join semantics: inner (the paper's setting), or probe-side
    /// semi/anti/outer (see [`kinds::JoinKind`]).
    pub kind: JoinKind,
}

impl Default for JoinConfig {
    fn default() -> Self {
        JoinConfig {
            unique_build: true,
            radix_bits: None,
            bucket_tuples: 0,
            scheduler_seed: 0,
            expected_out_rows: None,
            kind: JoinKind::Inner,
        }
    }
}

/// Execution report for one join: the algorithm that ran plus the shared
/// per-operator report ([`sim::OpStats`]: phases, rows, peak memory,
/// hardware counters). Dereferences to [`OpStats`], so `stats.phases`,
/// `stats.rows`, `stats.peak_mem_bytes` and the former
/// `JoinStats::throughput_tuples` helper (now [`OpStats::throughput_tuples`])
/// all keep working unchanged.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JoinStats {
    /// Which implementation produced this.
    pub algorithm: Algorithm,
    /// The shared per-operator report.
    pub op: OpStats,
}

impl JoinStats {
    /// Assemble from the measurements every join implementation takes; the
    /// hardware-counter delta is filled in centrally by [`run_join`].
    pub fn new(algorithm: Algorithm, phases: PhaseTimes, rows: usize, peak_mem_bytes: u64) -> Self {
        JoinStats {
            algorithm,
            op: OpStats::new(phases, rows, peak_mem_bytes),
        }
    }
}

impl std::ops::Deref for JoinStats {
    type Target = OpStats;
    fn deref(&self) -> &OpStats {
        &self.op
    }
}

/// A materialized join result `T(k, r_1..r_n, s_1..s_m)` plus statistics.
pub struct JoinOutput {
    /// The matched key column.
    pub keys: Column,
    /// Materialized payload columns from R, in schema order.
    pub r_payloads: Vec<Column>,
    /// Materialized payload columns from S, in schema order.
    pub s_payloads: Vec<Column>,
    /// Timing and memory report.
    pub stats: JoinStats,
}

impl JoinOutput {
    /// Output cardinality.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the join matched nothing.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// All rows as widened tuples `(key, r payloads…, s payloads…)`, sorted —
    /// an order-insensitive form for oracle comparison in tests.
    pub fn rows_sorted(&self) -> Vec<Vec<i64>> {
        let mut rows: Vec<Vec<i64>> = (0..self.len())
            .map(|i| {
                let mut row = Vec::with_capacity(1 + self.r_payloads.len() + self.s_payloads.len());
                row.push(self.keys.value(i));
                row.extend(self.r_payloads.iter().map(|c| c.value(i)));
                row.extend(self.s_payloads.iter().map(|c| c.value(i)));
                row
            })
            .collect();
        rows.sort_unstable();
        rows
    }
}

/// Run `algorithm` on `(r, s)` — the uniform entry point used by the
/// benchmark harness, the engine's operator layer and the decision-tree
/// validation. Captures the per-join hardware-counter delta (Table 4
/// metrics) into the shared [`OpStats`] report.
pub fn run_join(
    dev: &Device,
    algorithm: Algorithm,
    r: &Relation,
    s: &Relation,
    config: &JoinConfig,
) -> JoinOutput {
    let before = dev.counters();
    let t0 = dev.elapsed();
    let mut out = match algorithm {
        Algorithm::SmjUm => smj::smj_um(dev, r, s, config),
        Algorithm::SmjOm => smj::smj_om(dev, r, s, config),
        Algorithm::PhjUm => phj_um::phj_um(dev, r, s, config),
        Algorithm::PhjOm => phj_om::phj_om(dev, r, s, config),
        Algorithm::PhjOmGfur => phj_om::phj_om_gfur(dev, r, s, config),
        Algorithm::Nphj => nphj::nphj(dev, r, s, config),
        Algorithm::CpuRadix => cpu::cpu_radix_join(dev, r, s, config),
    };
    out.stats.op.counters = dev.counters().delta_since(&before).0;
    out.stats.op.query = dev.query_id();
    dev.trace_span(sim::SpanCat::Join, algorithm.name(), t0, dev.elapsed());
    out
}

/// Time a closure in simulated device time.
pub(crate) fn timed<T>(dev: &Device, f: impl FnOnce() -> T) -> (T, SimTime) {
    let t0 = dev.elapsed();
    let out = f();
    (out, dev.elapsed() - t0)
}

/// Time a closure in simulated device time *and* record it as a paper-phase
/// span (`transform` / `match_find` / `materialize`) on the device trace.
/// The returned duration is exactly the recorded span's, so phase-span sums
/// in a trace reproduce [`sim::PhaseTimes`] bit for bit.
pub(crate) fn timed_phase<T>(
    dev: &Device,
    phase: &'static str,
    f: impl FnOnce() -> T,
) -> (T, SimTime) {
    let t0 = dev.elapsed();
    let out = f();
    let t1 = dev.elapsed();
    dev.trace_span(sim::SpanCat::Phase, phase, t0, t1);
    (out, t1 - t0)
}

/// Pick the radix fan-out: partitions sized to the shared-memory hash table,
/// clamped to the 2-pass range the paper uses (Section 4.3).
pub(crate) fn choose_radix_bits(
    dev: &Device,
    build_rows: usize,
    key_bytes: u64,
    config: &JoinConfig,
) -> u32 {
    if let Some(bits) = config.radix_bits {
        return bits;
    }
    let target = dev.config().shared_mem_tuples(key_bytes + 4).max(64);
    let parts = (build_rows as u64).div_ceil(target).max(1);
    (64 - (parts - 1).leading_zeros()).clamp(1, 16)
}
