//! Relations: a key column plus payload columns, per Section 2.2 of the
//! paper — `R(k, r_1, ..., r_n)`.

use crate::Column;

/// An in-memory relation with one join-key column and `n` payload columns.
///
/// The paper's classification (Section 2.2): a join is *narrow* when each
/// input has at most one payload column and *wide* otherwise; wide joins are
/// where the materialization bottleneck (and the GFTR optimization) lives.
pub struct Relation {
    name: String,
    key: Column,
    payloads: Vec<Column>,
}

impl Relation {
    /// Assemble a relation. Panics if any payload column's length differs
    /// from the key column's — a relation is rectangular by construction.
    pub fn new(name: impl Into<String>, key: Column, payloads: Vec<Column>) -> Self {
        let name = name.into();
        for (i, p) in payloads.iter().enumerate() {
            assert_eq!(
                p.len(),
                key.len(),
                "payload column {i} of relation '{name}' has {} rows, key has {}",
                p.len(),
                key.len()
            );
        }
        Relation {
            name,
            key,
            payloads,
        }
    }

    /// Relation name (for diagnostics and benchmark tables).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The join-key column.
    pub fn key(&self) -> &Column {
        &self.key
    }

    /// All payload (non-key) columns, in schema order.
    pub fn payloads(&self) -> &[Column] {
        &self.payloads
    }

    /// Payload column `i`.
    pub fn payload(&self, i: usize) -> &Column {
        &self.payloads[i]
    }

    /// Number of payload columns.
    pub fn num_payloads(&self) -> usize {
        self.payloads.len()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.key.len()
    }

    /// Whether the relation has no rows.
    pub fn is_empty(&self) -> bool {
        self.key.is_empty()
    }

    /// Total size in bytes across key and payload columns (the paper's
    /// `1G ⋈ 2G` notation refers to this).
    pub fn size_bytes(&self) -> u64 {
        self.key.size_bytes() + self.payloads.iter().map(Column::size_bytes).sum::<u64>()
    }

    /// More than one payload column ⇒ the join is "wide" on this side.
    pub fn is_wide(&self) -> bool {
        self.payloads.len() > 1
    }

    /// Decompose into parts (used by operators that consume the relation).
    pub fn into_parts(self) -> (String, Column, Vec<Column>) {
        (self.name, self.key, self.payloads)
    }

    /// Row `i` as widened values: `(key, payloads...)`. Oracle/test helper.
    pub fn row(&self, i: usize) -> (i64, Vec<i64>) {
        (
            self.key.value(i),
            self.payloads.iter().map(|p| p.value(i)).collect(),
        )
    }
}

impl std::fmt::Debug for Relation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Relation")
            .field("name", &self.name)
            .field("rows", &self.len())
            .field("key", &self.key.dtype())
            .field(
                "payloads",
                &self.payloads.iter().map(|p| p.dtype()).collect::<Vec<_>>(),
            )
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim::Device;

    #[test]
    fn assembles_and_reports_shape() {
        let dev = Device::a100();
        let r = Relation::new(
            "R",
            Column::from_i32(&dev, vec![0, 1, 2], "k"),
            vec![
                Column::from_i32(&dev, vec![5, 6, 7], "p1"),
                Column::from_i64(&dev, vec![50, 60, 70], "p2"),
            ],
        );
        assert_eq!(r.len(), 3);
        assert_eq!(r.num_payloads(), 2);
        assert!(r.is_wide());
        assert_eq!(r.size_bytes(), 3 * 4 + 3 * 4 + 3 * 8);
        assert_eq!(r.row(1), (1, vec![6, 60]));
    }

    #[test]
    fn narrow_relation() {
        let dev = Device::a100();
        let r = Relation::new(
            "S",
            Column::from_i32(&dev, vec![0, 1], "k"),
            vec![Column::from_i32(&dev, vec![9, 8], "p")],
        );
        assert!(!r.is_wide());
    }

    #[test]
    #[should_panic(expected = "payload column 0")]
    fn ragged_relation_rejected() {
        let dev = Device::a100();
        let _ = Relation::new(
            "R",
            Column::from_i32(&dev, vec![0, 1, 2], "k"),
            vec![Column::from_i32(&dev, vec![5], "p1")],
        );
    }
}
