//! Dictionary encoding of strings into integers.
//!
//! Section 5.3 of the paper: *"we transform strings into numeric values by
//! dictionary encoding"* before running the TPC-H/DS joins. The encoder
//! assigns dense codes in first-seen order and can decode results back for
//! verification.

use std::collections::HashMap;

/// A string-to-code dictionary with dense `i32` codes.
#[derive(Debug, Default)]
pub struct DictionaryEncoder {
    codes: HashMap<String, i32>,
    values: Vec<String>,
}

impl DictionaryEncoder {
    /// An empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Return the code for `value`, inserting it if unseen.
    pub fn encode(&mut self, value: &str) -> i32 {
        if let Some(&c) = self.codes.get(value) {
            return c;
        }
        let code = self.values.len() as i32;
        self.codes.insert(value.to_string(), code);
        self.values.push(value.to_string());
        code
    }

    /// Encode a batch.
    pub fn encode_all<'a, I: IntoIterator<Item = &'a str>>(&mut self, values: I) -> Vec<i32> {
        values.into_iter().map(|v| self.encode(v)).collect()
    }

    /// Look up a code without inserting.
    pub fn code_of(&self, value: &str) -> Option<i32> {
        self.codes.get(value).copied()
    }

    /// Decode a code back to its string.
    pub fn decode(&self, code: i32) -> Option<&str> {
        self.values.get(code as usize).map(String::as_str)
    }

    /// Number of distinct values seen.
    pub fn cardinality(&self) -> usize {
        self.values.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_first_seen_codes() {
        let mut d = DictionaryEncoder::new();
        assert_eq!(d.encode("SHIP"), 0);
        assert_eq!(d.encode("AIR"), 1);
        assert_eq!(d.encode("SHIP"), 0);
        assert_eq!(d.cardinality(), 2);
        assert_eq!(d.decode(1), Some("AIR"));
        assert_eq!(d.decode(2), None);
        assert_eq!(d.code_of("AIR"), Some(1));
        assert_eq!(d.code_of("RAIL"), None);
    }

    #[test]
    fn batch_encode() {
        let mut d = DictionaryEncoder::new();
        let codes = d.encode_all(["a", "b", "a", "c"]);
        assert_eq!(codes, vec![0, 1, 0, 2]);
    }
}
