//! Calendar dates as integer day counts.
//!
//! Date columns store days since 1970-01-01 (the epoch), so they are
//! ordinary integer columns on the device: range filters like
//! `o_orderdate < DATE '1995-03-15'` compile to one integer comparison,
//! exactly how columnar engines treat SQL dates. The civil-from-days and
//! days-from-civil conversions are the standard proleptic-Gregorian
//! era/day-of-era arithmetic (branch-free except for the leap rules).

/// Days since 1970-01-01 for a proleptic-Gregorian calendar date.
/// `month` is 1-12, `day` 1-31; out-of-range days follow the arithmetic
/// (no validation — use [`parse_date`] for checked input).
pub fn days_from_civil(year: i64, month: u32, day: u32) -> i64 {
    let y = if month <= 2 { year - 1 } else { year };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let m = month as i64;
    let d = day as i64;
    let doy = (153 * (if m > 2 { m - 3 } else { m + 9 }) + 2) / 5 + d - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146097 + doe - 719468
}

/// The `(year, month, day)` a day count stands for — the inverse of
/// [`days_from_civil`].
pub fn civil_from_days(days: i64) -> (i64, u32, u32) {
    let z = days + 719468;
    let era = if z >= 0 { z } else { z - 146096 } / 146097;
    let doe = z - era * 146097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
    (if m <= 2 { y + 1 } else { y }, m, d)
}

/// Parse a `YYYY-MM-DD` literal into days since the epoch. Returns `None`
/// for anything that is not a valid calendar date in that exact format.
pub fn parse_date(s: &str) -> Option<i64> {
    let mut parts = s.split('-');
    let year: i64 = parts.next()?.parse().ok()?;
    let month: u32 = parts.next()?.parse().ok()?;
    let day: u32 = parts.next()?.parse().ok()?;
    if parts.next().is_some() || !(1..=12).contains(&month) || day == 0 {
        return None;
    }
    let days = days_from_civil(year, month, day);
    // Round-trip check rejects overflowed days-of-month (e.g. Feb 30).
    (civil_from_days(days) == (year, month, day)).then_some(days)
}

/// Render a day count as `YYYY-MM-DD`.
pub fn format_date(days: i64) -> String {
    let (y, m, d) = civil_from_days(days);
    format!("{y:04}-{m:02}-{d:02}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_anchors() {
        assert_eq!(days_from_civil(1970, 1, 1), 0);
        assert_eq!(days_from_civil(1970, 1, 2), 1);
        assert_eq!(days_from_civil(1969, 12, 31), -1);
        // TPC-H date domain endpoints.
        assert_eq!(days_from_civil(1992, 1, 1), 8035);
        assert_eq!(days_from_civil(1998, 12, 31), 10591);
        assert_eq!(days_from_civil(2000, 3, 1), 11017);
    }

    #[test]
    fn roundtrip_across_leap_years() {
        for days in (-200_000..200_000).step_by(97) {
            let (y, m, d) = civil_from_days(days);
            assert_eq!(days_from_civil(y, m, d), days, "{y}-{m}-{d}");
        }
        assert_eq!(civil_from_days(days_from_civil(2000, 2, 29)), (2000, 2, 29));
        assert_eq!(civil_from_days(days_from_civil(1900, 3, 1)), (1900, 3, 1));
    }

    #[test]
    fn parse_and_format() {
        assert_eq!(parse_date("1995-03-15"), Some(days_from_civil(1995, 3, 15)));
        assert_eq!(format_date(parse_date("1995-03-15").unwrap()), "1995-03-15");
        assert_eq!(parse_date("1995-3-15"), Some(days_from_civil(1995, 3, 15)));
        assert_eq!(parse_date("1995-02-30"), None);
        assert_eq!(parse_date("1995-13-01"), None);
        assert_eq!(parse_date("1995-00-01"), None);
        assert_eq!(parse_date("not-a-date"), None);
        assert_eq!(parse_date("1995-03"), None);
        assert_eq!(parse_date("1995-03-15-2"), None);
    }
}
