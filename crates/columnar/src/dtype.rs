//! Attribute types. The paper evaluates 4-byte and 8-byte integers
//! (Section 5.2.5); everything else (strings, decimals) is dictionary- or
//! fixed-point-encoded into one of these before reaching the device.

use serde::{Deserialize, Serialize};

/// The physical type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DType {
    /// 4-byte signed integer.
    I32,
    /// 8-byte signed integer.
    I64,
}

impl DType {
    /// Width in bytes.
    pub const fn size(self) -> u64 {
        match self {
            DType::I32 => 4,
            DType::I64 => 8,
        }
    }

    /// Short display name, matching the paper's "4B"/"8B" labels.
    pub const fn label(self) -> &'static str {
        match self {
            DType::I32 => "4B",
            DType::I64 => "8B",
        }
    }
}

impl std::fmt::Display for DType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_and_labels() {
        assert_eq!(DType::I32.size(), 4);
        assert_eq!(DType::I64.size(), 8);
        assert_eq!(DType::I32.to_string(), "4B");
        assert_eq!(DType::I64.to_string(), "8B");
    }
}
