//! A typed column living in simulated device memory.

use crate::DType;
use sim::{Device, DeviceBuffer};

/// One column of a relation: a contiguous typed array in device memory.
///
/// Columns are immutable once built (all operators produce new columns), so
/// cheap read access is the design point. Dispatch between the two physical
/// types is done once per column per kernel, never per element.
pub enum Column {
    /// 4-byte signed integers.
    I32(DeviceBuffer<i32>),
    /// 8-byte signed integers.
    I64(DeviceBuffer<i64>),
}

impl Column {
    /// Build a 4-byte column from host data.
    pub fn from_i32(dev: &Device, data: Vec<i32>, label: &'static str) -> Self {
        Column::I32(dev.upload(data, label))
    }

    /// Build an 8-byte column from host data.
    pub fn from_i64(dev: &Device, data: Vec<i64>, label: &'static str) -> Self {
        Column::I64(dev.upload(data, label))
    }

    /// Build a column of `dtype` from `u64` radix images (values must fit).
    pub fn from_radix(dev: &Device, dtype: DType, data: &[u64], label: &'static str) -> Self {
        match dtype {
            DType::I32 => Column::from_i32(
                dev,
                data.iter().map(|&v| sim::Element::from_radix(v)).collect(),
                label,
            ),
            DType::I64 => Column::from_i64(
                dev,
                data.iter().map(|&v| sim::Element::from_radix(v)).collect(),
                label,
            ),
        }
    }

    /// The physical type.
    pub fn dtype(&self) -> DType {
        match self {
            Column::I32(_) => DType::I32,
            Column::I64(_) => DType::I64,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Column::I32(b) => b.len(),
            Column::I64(b) => b.len(),
        }
    }

    /// Whether the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Size in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.len() as u64 * self.dtype().size()
    }

    /// Typed access to a 4-byte column. Panics if the type differs — callers
    /// dispatch on [`Column::dtype`] first.
    pub fn as_i32(&self) -> &DeviceBuffer<i32> {
        match self {
            Column::I32(b) => b,
            Column::I64(_) => panic!("column is I64, expected I32"),
        }
    }

    /// Typed access to an 8-byte column.
    pub fn as_i64(&self) -> &DeviceBuffer<i64> {
        match self {
            Column::I64(b) => b,
            Column::I32(_) => panic!("column is I32, expected I64"),
        }
    }

    /// Element `i` widened to `i64` (for oracles, checks and display — not on
    /// any hot path).
    pub fn value(&self, i: usize) -> i64 {
        match self {
            Column::I32(b) => b[i] as i64,
            Column::I64(b) => b[i],
        }
    }

    /// Iterate all values widened to `i64`.
    pub fn iter_i64(&self) -> Box<dyn Iterator<Item = i64> + '_> {
        match self {
            Column::I32(b) => Box::new(b.iter().map(|&v| v as i64)),
            Column::I64(b) => Box::new(b.iter().copied()),
        }
    }

    /// Simulated device address of row `i` (feeds the coalescing model).
    #[inline]
    pub fn addr_of(&self, i: usize) -> u64 {
        match self {
            Column::I32(b) => b.addr_of(i),
            Column::I64(b) => b.addr_of(i),
        }
    }

    /// Collect to a host vector of widened values (test/oracle helper).
    pub fn to_vec_i64(&self) -> Vec<i64> {
        self.iter_i64().collect()
    }

    /// A zero-cost aliasing view of the column (see
    /// [`sim::DeviceBuffer::alias`]): same simulated addresses, no ledger
    /// charge. Used by the query engine to hand columns between operators
    /// without copying.
    pub fn alias(&self) -> Column {
        match self {
            Column::I32(b) => Column::I32(b.alias()),
            Column::I64(b) => Column::I64(b.alias()),
        }
    }
}

/// Statically typed view of [`Column`] for generic operator code: wraps and
/// unwraps typed device buffers so join/aggregation kernels can be written
/// once over `K: ColumnElement` and dispatched per input column type.
pub trait ColumnElement: sim::Element + Ord + Eq + std::hash::Hash {
    /// Wrap a typed buffer into a dynamically typed column.
    fn wrap(buf: DeviceBuffer<Self>) -> Column;
    /// Borrow the typed buffer out of a column; panics on type mismatch.
    fn unwrap(col: &Column) -> &DeviceBuffer<Self>;
}

impl ColumnElement for i32 {
    fn wrap(buf: DeviceBuffer<Self>) -> Column {
        Column::I32(buf)
    }
    fn unwrap(col: &Column) -> &DeviceBuffer<Self> {
        col.as_i32()
    }
}

impl ColumnElement for i64 {
    fn wrap(buf: DeviceBuffer<Self>) -> Column {
        Column::I64(buf)
    }
    fn unwrap(col: &Column) -> &DeviceBuffer<Self> {
        col.as_i64()
    }
}

impl std::fmt::Debug for Column {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Column")
            .field("dtype", &self.dtype())
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim::Device;

    #[test]
    fn typed_accessors() {
        let dev = Device::a100();
        let c = Column::from_i32(&dev, vec![1, -2, 3], "c");
        assert_eq!(c.dtype(), DType::I32);
        assert_eq!(c.len(), 3);
        assert_eq!(c.size_bytes(), 12);
        assert_eq!(c.value(1), -2);
        assert_eq!(c.to_vec_i64(), vec![1, -2, 3]);
        assert_eq!(c.as_i32().as_slice(), &[1, -2, 3]);
    }

    #[test]
    #[should_panic(expected = "expected I32")]
    fn wrong_type_access_panics() {
        let dev = Device::a100();
        let c = Column::from_i64(&dev, vec![1], "c");
        let _ = c.as_i32();
    }

    #[test]
    fn from_radix_roundtrips_signed_values() {
        let dev = Device::a100();
        use sim::Element;
        let vals = [-5i64, 0, 7, i32::MAX as i64];
        let radix: Vec<u64> = vals.iter().map(|&v| (v as i32).to_radix()).collect();
        let c = Column::from_radix(&dev, DType::I32, &radix, "c");
        assert_eq!(c.to_vec_i64(), vals.to_vec());
        let radix64: Vec<u64> = vals.iter().map(|&v| v.to_radix()).collect();
        let c = Column::from_radix(&dev, DType::I64, &radix64, "c");
        assert_eq!(c.to_vec_i64(), vals.to_vec());
    }

    #[test]
    fn addresses_are_stride_typed() {
        let dev = Device::a100();
        let c4 = Column::from_i32(&dev, vec![0; 8], "c4");
        let c8 = Column::from_i64(&dev, vec![0; 8], "c8");
        assert_eq!(c4.addr_of(2) - c4.addr_of(0), 8);
        assert_eq!(c8.addr_of(2) - c8.addr_of(0), 16);
    }
}
