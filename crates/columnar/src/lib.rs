//! # columnar — column-oriented storage for the GPU join study
//!
//! Relations are stored exactly as the paper describes (Section 3): each
//! column is one contiguous array in device memory; a relation is a join-key
//! column plus zero or more payload (non-key) columns. Attribute widths are
//! 4 or 8 bytes ([`DType`]); strings are dictionary-encoded into integers
//! before they reach the device (Section 5.3), which [`DictionaryEncoder`]
//! provides.
//!
//! ```
//! use sim::Device;
//! use columnar::{Column, Relation};
//!
//! let dev = Device::a100();
//! let key = Column::from_i32(&dev, vec![2, 0, 1], "r.key");
//! let pay = Column::from_i64(&dev, vec![20, 0, 10], "r.p1");
//! let r = Relation::new("R", key, vec![pay]);
//! assert_eq!(r.len(), 3);
//! assert!(r.is_wide() == false); // one payload column => narrow
//! ```

pub mod date;

mod column;
mod dict;
mod dtype;
mod relation;

pub use column::{Column, ColumnElement};
pub use dict::DictionaryEncoder;
pub use dtype::DType;
pub use relation::Relation;
