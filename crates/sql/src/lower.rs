//! Lowering: bound [`LogicalPlan`] → executable [`engine::Plan`].
//!
//! Most nodes map one-to-one; the work is the two rewrites that fit SQL's
//! multi-column GROUP BY / ORDER BY onto the engine's single-key kernels,
//! decided by the [`heuristics::composite`] tree from a bottom-up static
//! analysis of the plan:
//!
//! - **Value ranges** flow from the catalog's load-time column statistics
//!   through filters, projections (interval arithmetic), joins (key ranges
//!   intersect) and aggregates (a SUM is bounded by the row bound times the
//!   per-row range). They size the bit fields of packed composite keys.
//! - **Uniqueness and functional dependencies** start at declared primary
//!   keys and survive what preserves them: a join whose build key is unique
//!   keeps probe-side properties (and vice versa), and determinant sets
//!   ride along under the join's output names. They justify the
//!   FD-reduction fallback when a grouping key will not pack.
//!
//! Packing is order-preserving (major column in the high bits, offsets
//! removed), so a packed ORDER BY sorts exactly like its lexicographic
//! tuple; descending keys enter the field as `max - value`. Group keys
//! unpack at the boundary with one Div/Mod projection per column.
//! Every composite decision is recorded in [`Lowered::notes`] — the same
//! guard/rationale text the heuristics tree carries, so `--explain` can
//! show why a plan has the shape it has.

use crate::logical::LogicalPlan;
use engine::{AggSpec, Catalog, EngineError, Expr, Plan};
use groupby::AggFn;
use heuristics::composite::{
    bits_for_span, explain_choose_composite, CompositeProfile, CompositeStrategy,
};
use std::collections::{HashMap, HashSet};

/// The lowered plan plus the composite-key decisions taken on the way.
#[derive(Debug)]
pub struct Lowered {
    /// The executable plan.
    pub plan: Plan,
    /// One line per composite GROUP BY / ORDER BY rewrite: the strategy,
    /// the bit budget and the decision-tree rationale.
    pub notes: Vec<String>,
}

/// Lower a bound logical plan against the catalog.
pub fn lower(logical: &LogicalPlan, catalog: &Catalog) -> Result<Lowered, EngineError> {
    let mut notes = Vec::new();
    let (plan, _info) = lower_node(logical, catalog, &mut notes)?;
    Ok(Lowered { plan, notes })
}

/// An inclusive value range; `min > max` means empty/unknown-empty.
#[derive(Debug, Clone, Copy)]
struct Range {
    min: i64,
    max: i64,
}

impl Range {
    const WIDE: Range = Range {
        min: i64::MIN,
        max: i64::MAX,
    };

    fn lit(v: i64) -> Range {
        Range { min: v, max: v }
    }

    /// Field width in bits for this range's span (≥ 1; 64 when the span
    /// overflows, which can never pack).
    fn bits(&self) -> u32 {
        let span = (self.max as i128) - (self.min as i128);
        if span <= 0 {
            1
        } else if span > u64::MAX as i128 {
            64
        } else {
            bits_for_span(span as u64)
        }
    }
}

fn sat(v: i128) -> i64 {
    v.clamp(i64::MIN as i128, i64::MAX as i128) as i64
}

/// What the analysis knows about a node's output.
#[derive(Debug, Clone)]
struct Info {
    /// Output columns in order, with value ranges.
    cols: Vec<(String, Range)>,
    /// Upper bound on output rows.
    rows: u64,
    /// Columns known unique (each value at most once).
    unique: HashSet<String>,
    /// Functional dependencies: determinant → columns it determines.
    determines: HashMap<String, HashSet<String>>,
}

impl Info {
    fn range(&self, name: &str) -> Range {
        self.cols
            .iter()
            .find_map(|(n, r)| (n == name).then_some(*r))
            .unwrap_or(Range::WIDE)
    }

    /// Transitive closure of what `det` determines (including itself).
    fn closure(&self, det: &str) -> HashSet<String> {
        let mut set: HashSet<String> = HashSet::new();
        let mut frontier = vec![det.to_string()];
        while let Some(c) = frontier.pop() {
            if !set.insert(c.clone()) {
                continue;
            }
            if let Some(ds) = self.determines.get(&c) {
                frontier.extend(ds.iter().cloned());
            }
        }
        set
    }
}

/// Interval arithmetic over the engine expression language. Anything the
/// rules below don't cover is conservatively wide.
fn range_of(e: &Expr, info: &Info) -> Range {
    match e {
        Expr::Col(c) => info.range(c),
        Expr::Lit(v) => Range::lit(*v),
        Expr::Add(a, b) => {
            let (x, y) = (range_of(a, info), range_of(b, info));
            Range {
                min: sat(x.min as i128 + y.min as i128),
                max: sat(x.max as i128 + y.max as i128),
            }
        }
        Expr::Sub(a, b) => {
            let (x, y) = (range_of(a, info), range_of(b, info));
            Range {
                min: sat(x.min as i128 - y.max as i128),
                max: sat(x.max as i128 - y.min as i128),
            }
        }
        Expr::Mul(a, b) => {
            let (x, y) = (range_of(a, info), range_of(b, info));
            let p = [
                x.min as i128 * y.min as i128,
                x.min as i128 * y.max as i128,
                x.max as i128 * y.min as i128,
                x.max as i128 * y.max as i128,
            ];
            Range {
                min: sat(*p.iter().min().unwrap()),
                max: sat(*p.iter().max().unwrap()),
            }
        }
        Expr::Div(a, b) => match (**b).clone() {
            Expr::Lit(d) if d > 0 => {
                let x = range_of(a, info);
                let q = [x.min / d, x.max / d];
                Range {
                    min: *q.iter().min().unwrap(),
                    max: *q.iter().max().unwrap(),
                }
            }
            _ => Range::WIDE,
        },
        Expr::Mod(_, b) => match (**b).clone() {
            Expr::Lit(m) if m > 0 => Range {
                min: -(m - 1),
                max: m - 1,
            },
            _ => Range::WIDE,
        },
        Expr::Cmp { .. } | Expr::And(..) | Expr::Or(..) => Range { min: 0, max: 1 },
        _ => Range::WIDE,
    }
}

/// The per-output range of one aggregate, given the input's row bound.
fn agg_range(fun: AggFn, input: Range, rows: u64) -> Range {
    match fun {
        AggFn::Min | AggFn::Max => input,
        AggFn::Count => Range {
            min: 0,
            max: sat(rows as i128),
        },
        AggFn::Sum => Range {
            min: sat((rows as i128 * input.min as i128).min(0)),
            max: sat((rows as i128 * input.max as i128).max(0)),
        },
    }
}

/// Pack `fields` (already offset to start at zero) into one integer,
/// major-first (Horner form): each step shifts the accumulator past the
/// next field's width. Total width must be ≤ 63 (checked by the caller).
fn pack_expr(fields: &[(Expr, u32)]) -> Expr {
    let mut it = fields.iter();
    let (first, _) = it.next().expect("at least one field");
    let mut acc = first.clone();
    for (field, width) in it {
        acc = acc.mul(Expr::lit(1i64 << width)).add(field.clone());
    }
    acc
}

/// The zero-offset field for a key column: `col - min`, or `max - col`
/// for descending sort keys (so ascending packed order = descending
/// column order).
fn field(col: &str, r: Range, desc: bool) -> Expr {
    if desc {
        Expr::lit(r.max).sub(Expr::col(col))
    } else if r.min == 0 {
        Expr::col(col)
    } else {
        Expr::col(col).sub(Expr::lit(r.min))
    }
}

fn lower_node(
    node: &LogicalPlan,
    catalog: &Catalog,
    notes: &mut Vec<String>,
) -> Result<(Plan, Info), EngineError> {
    match node {
        LogicalPlan::Scan { table } => {
            let schema = catalog.schema(table)?;
            let cols = schema
                .columns
                .iter()
                .map(|(n, m)| {
                    (
                        n.clone(),
                        Range {
                            min: m.min,
                            max: m.max,
                        },
                    )
                })
                .collect::<Vec<_>>();
            let mut unique = HashSet::new();
            let mut determines = HashMap::new();
            if let Some(pk) = &schema.primary_key {
                unique.insert(pk.clone());
                determines.insert(
                    pk.clone(),
                    cols.iter()
                        .map(|(n, _)| n.clone())
                        .filter(|n| n != pk)
                        .collect(),
                );
            }
            Ok((
                Plan::scan(table.clone()),
                Info {
                    cols,
                    rows: schema.rows as u64,
                    unique,
                    determines,
                },
            ))
        }
        LogicalPlan::Filter { input, predicate } => {
            let (plan, info) = lower_node(input, catalog, notes)?;
            Ok((plan.filter(predicate.clone()), info))
        }
        LogicalPlan::Project { input, exprs } => {
            let (plan, info) = lower_node(input, catalog, notes)?;
            let out = exprs
                .iter()
                .map(|(n, e)| (n.clone(), range_of(e, &info)))
                .collect();
            // Plain column references carry uniqueness and FDs through the
            // projection under their output names; computed columns don't.
            let renames: HashMap<&str, Vec<&str>> = {
                let mut m: HashMap<&str, Vec<&str>> = HashMap::new();
                for (n, e) in exprs {
                    if let Expr::Col(c) = e {
                        m.entry(c.as_str()).or_default().push(n.as_str());
                    }
                }
                m
            };
            let unique = info
                .unique
                .iter()
                .flat_map(|u| renames.get(u.as_str()).into_iter().flatten())
                .map(|s| s.to_string())
                .collect();
            let mut determines: HashMap<String, HashSet<String>> = HashMap::new();
            for (det, set) in &info.determines {
                let Some(new_dets) = renames.get(det.as_str()) else {
                    continue;
                };
                let new_set: HashSet<String> = set
                    .iter()
                    .flat_map(|c| renames.get(c.as_str()).into_iter().flatten())
                    .map(|s| s.to_string())
                    .collect();
                if new_set.is_empty() {
                    continue;
                }
                for nd in new_dets {
                    determines.insert(nd.to_string(), new_set.clone());
                }
            }
            Ok((
                Plan::Project {
                    input: Box::new(plan),
                    exprs: exprs.clone(),
                },
                Info {
                    cols: out,
                    rows: info.rows,
                    unique,
                    determines,
                },
            ))
        }
        LogicalPlan::Join {
            left,
            right,
            left_key,
            right_key,
        } => {
            let (lp, li) = lower_node(left, catalog, notes)?;
            let (rp, ri) = lower_node(right, catalog, notes)?;
            let plan = lp.join(rp, left_key, right_key);
            let l_unique = li.unique.contains(left_key);
            let r_unique = ri.unique.contains(right_key);
            let rows = if l_unique {
                ri.rows
            } else if r_unique {
                li.rows
            } else {
                li.rows.saturating_mul(ri.rows)
            };
            // Output schema mirrors the engine join: key under the left
            // name, left payloads, right payloads sans probe key,
            // collisions suffixed `_n` in output order.
            let lk = li.range(left_key);
            let rk = ri.range(right_key);
            let key_range = Range {
                min: lk.min.max(rk.min),
                max: lk.max.min(rk.max),
            };
            // (old name, side) in output order; side 0 = left, 1 = right.
            let mut bases: Vec<(String, usize, Range)> = Vec::new();
            bases.push((left_key.clone(), 0, key_range));
            for (n, r) in li.cols.iter().filter(|(n, _)| n != left_key) {
                bases.push((n.clone(), 0, *r));
            }
            for (n, r) in ri.cols.iter().filter(|(n, _)| n != right_key) {
                bases.push((n.clone(), 1, *r));
            }
            let mut used: HashMap<String, usize> = HashMap::new();
            let mut cols = Vec::new();
            // rename[side]: old name -> output name.
            let mut rename: [HashMap<String, String>; 2] = [HashMap::new(), HashMap::new()];
            for (old, side, r) in &bases {
                let n = used.entry(old.clone()).or_insert(0);
                *n += 1;
                let out = if *n == 1 {
                    old.clone()
                } else {
                    format!("{old}_{n}")
                };
                rename[*side].insert(old.clone(), out.clone());
                cols.push((out, *r));
            }
            // The probe key's values surface as the output key column.
            rename[1].insert(right_key.clone(), rename[0][left_key].clone());
            let key_out = rename[0][left_key].clone();

            let mut unique: HashSet<String> = HashSet::new();
            if l_unique {
                // Each probe row matches at most one build row: probe-side
                // uniqueness survives.
                for u in &ri.unique {
                    if let Some(n) = rename[1].get(u) {
                        unique.insert(n.clone());
                    }
                }
            }
            if r_unique {
                for u in &li.unique {
                    if let Some(n) = rename[0].get(u) {
                        unique.insert(n.clone());
                    }
                }
            }
            if !(l_unique && r_unique) {
                unique.remove(&key_out);
            }
            let mut determines: HashMap<String, HashSet<String>> = HashMap::new();
            let merge = |side: usize,
                         dets: &HashMap<String, HashSet<String>>,
                         out: &mut HashMap<String, HashSet<String>>| {
                for (det, set) in dets {
                    let Some(nd) = rename[side].get(det) else {
                        continue;
                    };
                    let ns: HashSet<String> = set
                        .iter()
                        .filter_map(|c| rename[side].get(c).cloned())
                        .collect();
                    out.entry(nd.clone()).or_default().extend(ns);
                }
            };
            merge(0, &li.determines, &mut determines);
            merge(1, &ri.determines, &mut determines);
            // The key column equals both join keys, so it determines what
            // either determined; and a unique side's key determines that
            // whole side.
            if l_unique {
                let all_left: HashSet<String> = li
                    .cols
                    .iter()
                    .filter_map(|(n, _)| rename[0].get(n).cloned())
                    .collect();
                determines
                    .entry(key_out.clone())
                    .or_default()
                    .extend(all_left);
            }
            if r_unique {
                let all_right: HashSet<String> = ri
                    .cols
                    .iter()
                    .filter_map(|(n, _)| rename[1].get(n).cloned())
                    .collect();
                determines
                    .entry(key_out.clone())
                    .or_default()
                    .extend(all_right);
            }
            determines
                .entry(key_out.clone())
                .or_default()
                .remove(&key_out);
            Ok((
                plan,
                Info {
                    cols,
                    rows,
                    unique,
                    determines,
                },
            ))
        }
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
            span,
        } => {
            let (plan, info) = lower_node(input, catalog, notes)?;
            let agg_ranges: Vec<(String, Range)> = aggs
                .iter()
                .map(|a| {
                    (
                        a.output.clone(),
                        agg_range(a.agg, info.range(&a.column), info.rows),
                    )
                })
                .collect();
            if group_by.len() == 1 {
                let key = &group_by[0];
                let mut cols = vec![(key.clone(), info.range(key))];
                cols.extend(agg_ranges);
                let mut determines = HashMap::new();
                determines.insert(
                    key.clone(),
                    cols.iter()
                        .map(|(n, _)| n.clone())
                        .filter(|n| n != key)
                        .collect::<HashSet<_>>(),
                );
                return Ok((
                    plan.aggregate(key, aggs.clone()),
                    Info {
                        rows: info.rows,
                        cols,
                        unique: [key.clone()].into_iter().collect(),
                        determines,
                    },
                ));
            }
            // Multi-column grouping: let the composite tree decide.
            let widths: Vec<u32> = group_by.iter().map(|g| info.range(g).bits()).collect();
            let bits: u32 = widths.iter().sum();
            let fd = group_by.iter().find(|g| {
                let closure = info.closure(g);
                group_by.iter().all(|k| closure.contains(k.as_str()))
            });
            let profile = CompositeProfile {
                columns: group_by.len(),
                bits_required: bits,
                rows: info.rows.min(usize::MAX as u64) as usize,
                fd_available: fd.is_some(),
            };
            let e = explain_choose_composite(&profile);
            notes.push(format!(
                "GROUP BY ({}): {} ({} bits{}) — {}",
                group_by.join(", "),
                e.algorithm.name(),
                bits,
                fd.map(|g| format!(", determinant {g}")).unwrap_or_default(),
                e.rationale
            ));
            match e.algorithm {
                CompositeStrategy::Pack => {
                    // Pack keys (major first) + agg inputs → single-key
                    // aggregate → unpack projection.
                    let fields: Vec<(Expr, u32)> = group_by
                        .iter()
                        .zip(&widths)
                        .map(|(g, w)| (field(g, info.range(g), false), *w))
                        .collect();
                    let mut pre: Vec<(String, Expr)> =
                        vec![("__gkey".to_string(), pack_expr(&fields))];
                    for a in aggs {
                        if !pre.iter().any(|(n, _)| n == &a.column) {
                            pre.push((a.column.clone(), Expr::col(a.column.clone())));
                        }
                    }
                    let mut post: Vec<(String, Expr)> = Vec::new();
                    let mut shift = bits;
                    for (g, w) in group_by.iter().zip(&widths) {
                        shift -= w;
                        let mut e = Expr::col("__gkey");
                        if shift > 0 {
                            e = e.div(Expr::lit(1i64 << shift));
                        }
                        if *g != group_by[0] {
                            e = e.rem(Expr::lit(1i64 << w));
                        }
                        let min = info.range(g).min;
                        if min != 0 {
                            e = e.add(Expr::lit(min));
                        }
                        post.push((g.clone(), e));
                    }
                    for a in aggs {
                        post.push((a.output.clone(), Expr::col(a.output.clone())));
                    }
                    let plan = Plan::Project {
                        input: Box::new(plan),
                        exprs: pre,
                    }
                    .aggregate("__gkey", aggs.clone())
                    .project(post.iter().map(|(n, e)| (n.as_str(), e.clone())).collect());
                    let mut cols: Vec<(String, Range)> = group_by
                        .iter()
                        .map(|g| (g.clone(), info.range(g)))
                        .collect();
                    cols.extend(agg_ranges);
                    Ok((
                        plan,
                        Info {
                            cols,
                            rows: info.rows,
                            unique: HashSet::new(),
                            determines: HashMap::new(),
                        },
                    ))
                }
                CompositeStrategy::FdReduce => {
                    // Group by the determinant; the other key columns are
                    // constant per group, so MAX reproduces them exactly.
                    let det = fd.expect("FdReduce implies a determinant").clone();
                    let mut full_aggs: Vec<AggSpec> = group_by
                        .iter()
                        .filter(|g| **g != det)
                        .map(|g| AggSpec::new(AggFn::Max, g.clone(), g.clone()))
                        .collect();
                    full_aggs.extend(aggs.iter().cloned());
                    let plan = plan.aggregate(&det, full_aggs);
                    // Reorder to the logical convention: keys then aggs.
                    let mut post: Vec<(String, Expr)> = group_by
                        .iter()
                        .map(|g| (g.clone(), Expr::col(g.clone())))
                        .collect();
                    for a in aggs {
                        post.push((a.output.clone(), Expr::col(a.output.clone())));
                    }
                    let plan =
                        plan.project(post.iter().map(|(n, e)| (n.as_str(), e.clone())).collect());
                    let mut cols: Vec<(String, Range)> = group_by
                        .iter()
                        .map(|g| (g.clone(), info.range(g)))
                        .collect();
                    cols.extend(agg_ranges);
                    let mut determines = HashMap::new();
                    determines.insert(
                        det.clone(),
                        cols.iter()
                            .map(|(n, _)| n.clone())
                            .filter(|n| *n != det)
                            .collect::<HashSet<_>>(),
                    );
                    Ok((
                        plan,
                        Info {
                            cols,
                            rows: info.rows,
                            unique: [det].into_iter().collect(),
                            determines,
                        },
                    ))
                }
                CompositeStrategy::Reject => Err(EngineError::SqlUnsupported {
                    message: format!(
                        "GROUP BY ({}) needs {bits} key bits (> 63) and no grouping \
                         column functionally determines the others",
                        group_by.join(", ")
                    ),
                    span: span.clone(),
                }),
            }
        }
        LogicalPlan::Distinct { input, column } => {
            let (plan, info) = lower_node(input, catalog, notes)?;
            let r = info.range(column);
            Ok((
                plan.distinct(column),
                Info {
                    cols: vec![(column.clone(), r)],
                    rows: info.rows,
                    unique: [column.clone()].into_iter().collect(),
                    determines: HashMap::new(),
                },
            ))
        }
        LogicalPlan::Sort { input, keys, span } => {
            lower_sort(input, keys, span, None, catalog, notes)
        }
        LogicalPlan::Limit { input, count } => {
            // LIMIT over ORDER BY folds into the sort (top-k): only the
            // surviving rows are ever gathered.
            if let LogicalPlan::Sort {
                input: sort_in,
                keys,
                span,
            } = input.as_ref()
            {
                return lower_sort(sort_in, keys, span, Some(*count), catalog, notes);
            }
            let (plan, info) = lower_node(input, catalog, notes)?;
            Ok((
                plan.limit(*count),
                Info {
                    rows: info.rows.min(*count as u64),
                    ..info
                },
            ))
        }
    }
}

fn lower_sort(
    input: &LogicalPlan,
    keys: &[(String, bool)],
    span: &engine::SqlSpan,
    limit: Option<usize>,
    catalog: &Catalog,
    notes: &mut Vec<String>,
) -> Result<(Plan, Info), EngineError> {
    let (plan, info) = lower_node(input, catalog, notes)?;
    if let [(key, desc)] = keys {
        let rows = limit.map_or(info.rows, |l| info.rows.min(l as u64));
        return Ok((plan.sort_by(key, *desc, limit), Info { rows, ..info }));
    }
    // Multi-key sort: pack an order-preserving key (descending fields
    // enter as max - value), sort ascending on it, project it away.
    // Unlike grouping there is no FD fallback — ordering needs the actual
    // lexicographic value.
    let widths: Vec<u32> = keys.iter().map(|(k, _)| info.range(k).bits()).collect();
    let bits: u32 = widths.iter().sum();
    if bits > 63 {
        return Err(EngineError::SqlUnsupported {
            message: format!(
                "ORDER BY ({}) needs {bits} key bits (> 63); composite sort keys must pack",
                keys.iter()
                    .map(|(k, _)| k.as_str())
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
            span: span.clone(),
        });
    }
    notes.push(format!(
        "ORDER BY ({}): PACK ({} bits) — order-preserving packed sort key, \
         descending fields encoded as max - value",
        keys.iter()
            .map(|(k, d)| format!("{k}{}", if *d { " desc" } else { "" }))
            .collect::<Vec<_>>()
            .join(", "),
        bits
    ));
    let fields: Vec<(Expr, u32)> = keys
        .iter()
        .zip(&widths)
        .map(|((k, desc), w)| (field(k, info.range(k), *desc), *w))
        .collect();
    let mut pre: Vec<(String, Expr)> = info
        .cols
        .iter()
        .map(|(n, _)| (n.clone(), Expr::col(n.clone())))
        .collect();
    pre.push(("__skey".to_string(), pack_expr(&fields)));
    let post: Vec<(String, Expr)> = info
        .cols
        .iter()
        .map(|(n, _)| (n.clone(), Expr::col(n.clone())))
        .collect();
    let plan = Plan::Project {
        input: Box::new(plan),
        exprs: pre,
    }
    .sort_by("__skey", false, limit)
    .project(post.iter().map(|(n, e)| (n.as_str(), e.clone())).collect());
    let rows = limit.map_or(info.rows, |l| info.rows.min(l as u64));
    Ok((plan, Info { rows, ..info }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binder::bind;
    use crate::parser::parse;
    use columnar::Column;
    use engine::{execute, execute_unfused, Table};
    use sim::Device;
    use std::collections::BTreeMap;

    fn plan_sql(sql: &str, cat: &Catalog) -> Result<Lowered, EngineError> {
        lower(&bind(&parse(sql).expect("parse"), cat)?, cat)
    }

    /// sales(region 2..4, kind 10..13, qty): small ranges, packs easily.
    fn sales(dev: &Device) -> Catalog {
        let mut c = Catalog::new();
        c.insert(Table::new(
            "sales",
            vec![
                (
                    "region",
                    Column::from_i32(dev, vec![2, 3, 2, 4, 3, 2, 4, 2], "region"),
                ),
                (
                    "kind",
                    Column::from_i32(dev, vec![10, 13, 10, 11, 13, 12, 11, 10], "kind"),
                ),
                (
                    "qty",
                    Column::from_i64(dev, vec![1, 2, 3, 4, 5, 6, 7, 8], "qty"),
                ),
            ],
        ));
        c
    }

    #[test]
    fn packed_group_by_matches_host_reference() {
        let dev = Device::a100();
        let cat = sales(&dev);
        let lowered = plan_sql(
            "SELECT region, kind, SUM(qty) AS total, COUNT(*) AS n FROM sales \
             GROUP BY region, kind ORDER BY region, kind",
            &cat,
        )
        .expect("plan");
        assert!(
            lowered.notes.iter().any(|n| n.contains("PACK")),
            "{:?}",
            lowered.notes
        );
        let out = execute(&dev, &cat, &lowered.plan).unwrap().table;
        // Host reference.
        let (region, kind, qty) = (
            vec![2i64, 3, 2, 4, 3, 2, 4, 2],
            vec![10i64, 13, 10, 11, 13, 12, 11, 10],
            vec![1i64, 2, 3, 4, 5, 6, 7, 8],
        );
        let mut groups: BTreeMap<(i64, i64), (i64, i64)> = BTreeMap::new();
        for i in 0..region.len() {
            let e = groups.entry((region[i], kind[i])).or_insert((0, 0));
            e.0 += qty[i];
            e.1 += 1;
        }
        let want_keys: Vec<(i64, i64)> = groups.keys().copied().collect();
        let got: Vec<(i64, i64)> = out
            .column("region")
            .unwrap()
            .to_vec_i64()
            .into_iter()
            .zip(out.column("kind").unwrap().to_vec_i64())
            .collect();
        assert_eq!(got, want_keys, "unpacked keys in packed-key order");
        assert_eq!(
            out.column("total").unwrap().to_vec_i64(),
            groups.values().map(|v| v.0).collect::<Vec<_>>()
        );
        assert_eq!(
            out.column("n").unwrap().to_vec_i64(),
            groups.values().map(|v| v.1).collect::<Vec<_>>()
        );
    }

    #[test]
    fn fd_reduction_kicks_in_when_packing_cannot() {
        let dev = Device::a100();
        let mut cat = Catalog::new();
        // `wide`'s span alone needs 63 bits, so (id, wide) cannot pack —
        // but id is the primary key, so it determines wide.
        c_insert_wide(&dev, &mut cat);
        let lowered = plan_sql(
            "SELECT id, wide, SUM(v) AS s FROM t GROUP BY id, wide ORDER BY id",
            &cat,
        )
        .expect("plan");
        assert!(
            lowered.notes.iter().any(|n| n.contains("FD-REDUCE")),
            "{:?}",
            lowered.notes
        );
        let out = execute(&dev, &cat, &lowered.plan).unwrap().table;
        assert_eq!(out.column("id").unwrap().to_vec_i64(), vec![1, 2, 3]);
        assert_eq!(
            out.column("wide").unwrap().to_vec_i64(),
            vec![0, 1 << 62, 5]
        );
        assert_eq!(out.column("s").unwrap().to_vec_i64(), vec![10, 20, 30]);
    }

    fn c_insert_wide(dev: &Device, cat: &mut Catalog) {
        cat.insert(Table::new(
            "t",
            vec![
                ("id", Column::from_i32(dev, vec![1, 2, 3], "id")),
                (
                    "wide",
                    Column::from_i64(dev, vec![0, 1i64 << 62, 5], "wide"),
                ),
                ("v", Column::from_i64(dev, vec![10, 20, 30], "v")),
            ],
        ));
        cat.set_primary_key("t", "id").unwrap();
    }

    #[test]
    fn unpackable_grouping_without_fd_is_rejected() {
        let dev = Device::a100();
        let mut cat = Catalog::new();
        cat.insert(Table::new(
            "t",
            vec![
                ("a", Column::from_i64(&dev, vec![0, 1i64 << 62], "a")),
                ("b", Column::from_i64(&dev, vec![0, 1i64 << 62], "b")),
            ],
        ));
        match plan_sql("SELECT a, b, COUNT(*) AS n FROM t GROUP BY a, b", &cat) {
            Err(EngineError::SqlUnsupported { message, .. }) => {
                assert!(message.contains("> 63"), "{message}");
            }
            other => panic!("expected rejection, got {other:?}"),
        }
    }

    #[test]
    fn multi_key_sort_orders_desc_then_asc() {
        let dev = Device::a100();
        let cat = sales(&dev);
        let lowered = plan_sql(
            "SELECT region, kind, qty FROM sales ORDER BY region DESC, kind, qty LIMIT 4",
            &cat,
        )
        .expect("plan");
        assert!(
            lowered.notes.iter().any(|n| n.contains("ORDER BY")),
            "{:?}",
            lowered.notes
        );
        let out = execute(&dev, &cat, &lowered.plan).unwrap().table;
        let rows: Vec<(i64, i64, i64)> = out
            .column("region")
            .unwrap()
            .to_vec_i64()
            .into_iter()
            .zip(out.column("kind").unwrap().to_vec_i64())
            .zip(out.column("qty").unwrap().to_vec_i64())
            .map(|((r, k), q)| (r, k, q))
            .collect();
        // Host reference: region desc, kind asc, qty asc, top 4.
        let mut want = vec![
            (2i64, 10i64, 1i64),
            (3, 13, 2),
            (2, 10, 3),
            (4, 11, 4),
            (3, 13, 5),
            (2, 12, 6),
            (4, 11, 7),
            (2, 10, 8),
        ];
        want.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
        want.truncate(4);
        assert_eq!(rows, want);
    }

    #[test]
    fn limit_folds_into_single_key_sort() {
        let dev = Device::a100();
        let cat = sales(&dev);
        let lowered =
            plan_sql("SELECT qty FROM sales ORDER BY qty DESC LIMIT 3", &cat).expect("plan");
        match &lowered.plan {
            Plan::Sort { limit, desc, .. } => {
                assert_eq!(*limit, Some(3));
                assert!(*desc);
            }
            other => panic!("expected top-level Sort, got {}", other.label()),
        }
        let out = execute(&dev, &cat, &lowered.plan).unwrap().table;
        assert_eq!(out.column("qty").unwrap().to_vec_i64(), vec![8, 7, 6]);
    }

    #[test]
    fn fused_and_unfused_agree_through_the_frontend() {
        let dev = Device::a100();
        let cat = sales(&dev);
        let lowered = plan_sql(
            "SELECT region, kind, SUM(qty) AS total FROM sales WHERE qty > 1 \
             GROUP BY region, kind ORDER BY total DESC, region LIMIT 3",
            &cat,
        )
        .expect("plan");
        let fused = execute(&dev, &cat, &lowered.plan).unwrap().table;
        let unfused = execute_unfused(&dev, &cat, &lowered.plan).unwrap().table;
        for col in ["region", "kind", "total"] {
            assert_eq!(
                fused.column(col).unwrap().to_vec_i64(),
                unfused.column(col).unwrap().to_vec_i64(),
                "{col}"
            );
        }
    }
}
