//! Hand-written SQL lexer: source text to a token stream with positions.
//!
//! Keywords are matched case-insensitively; identifiers keep their original
//! spelling (the catalog is case-sensitive, like the rest of the engine).
//! Every token carries the 1-based line/column where it starts, so binder
//! and parser errors can point at the exact source location.

use engine::{EngineError, SqlSpan};

/// Token kinds the parser consumes. Keywords get their own kinds so the
/// parser never string-compares.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // keyword/punctuation variants are their own doc
pub enum Tok {
    /// Unquoted identifier (original spelling preserved).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Single-quoted string literal (quotes stripped).
    Str(String),
    // Keywords.
    Select,
    Distinct,
    From,
    Where,
    Join,
    Inner,
    On,
    Group,
    By,
    Having,
    Order,
    Limit,
    As,
    And,
    Or,
    Asc,
    Desc,
    Date,
    Count,
    Sum,
    Min,
    Max,
    Avg,
    // Punctuation and operators.
    Comma,
    Dot,
    LParen,
    RParen,
    Star,
    Plus,
    Minus,
    Slash,
    Percent,
    Lt,
    Le,
    Eq,
    Ne,
    Ge,
    Gt,
    /// End of input (always the last token).
    Eof,
}

impl Tok {
    /// How the token renders in error messages.
    pub fn describe(&self) -> String {
        match self {
            Tok::Ident(s) => format!("identifier '{s}'"),
            Tok::Int(v) => format!("integer {v}"),
            Tok::Str(s) => format!("string '{s}'"),
            Tok::Eof => "end of input".to_string(),
            other => format!("'{}'", other.literal()),
        }
    }

    fn literal(&self) -> &'static str {
        match self {
            Tok::Select => "SELECT",
            Tok::Distinct => "DISTINCT",
            Tok::From => "FROM",
            Tok::Where => "WHERE",
            Tok::Join => "JOIN",
            Tok::Inner => "INNER",
            Tok::On => "ON",
            Tok::Group => "GROUP",
            Tok::By => "BY",
            Tok::Having => "HAVING",
            Tok::Order => "ORDER",
            Tok::Limit => "LIMIT",
            Tok::As => "AS",
            Tok::And => "AND",
            Tok::Or => "OR",
            Tok::Asc => "ASC",
            Tok::Desc => "DESC",
            Tok::Date => "DATE",
            Tok::Count => "COUNT",
            Tok::Sum => "SUM",
            Tok::Min => "MIN",
            Tok::Max => "MAX",
            Tok::Avg => "AVG",
            Tok::Comma => ",",
            Tok::Dot => ".",
            Tok::LParen => "(",
            Tok::RParen => ")",
            Tok::Star => "*",
            Tok::Plus => "+",
            Tok::Minus => "-",
            Tok::Slash => "/",
            Tok::Percent => "%",
            Tok::Lt => "<",
            Tok::Le => "<=",
            Tok::Eq => "=",
            Tok::Ne => "<>",
            Tok::Ge => ">=",
            Tok::Gt => ">",
            Tok::Ident(_) | Tok::Int(_) | Tok::Str(_) | Tok::Eof => unreachable!(),
        }
    }
}

/// A token plus where it starts in the source.
#[derive(Debug, Clone)]
pub struct Token {
    /// The token.
    pub tok: Tok,
    /// 1-based source position of the token's first character.
    pub span: SqlSpan,
}

fn keyword(word: &str) -> Option<Tok> {
    Some(match word.to_ascii_uppercase().as_str() {
        "SELECT" => Tok::Select,
        "DISTINCT" => Tok::Distinct,
        "FROM" => Tok::From,
        "WHERE" => Tok::Where,
        "JOIN" => Tok::Join,
        "INNER" => Tok::Inner,
        "ON" => Tok::On,
        "GROUP" => Tok::Group,
        "BY" => Tok::By,
        "HAVING" => Tok::Having,
        "ORDER" => Tok::Order,
        "LIMIT" => Tok::Limit,
        "AS" => Tok::As,
        "AND" => Tok::And,
        "OR" => Tok::Or,
        "ASC" => Tok::Asc,
        "DESC" => Tok::Desc,
        "DATE" => Tok::Date,
        "COUNT" => Tok::Count,
        "SUM" => Tok::Sum,
        "MIN" => Tok::Min,
        "MAX" => Tok::Max,
        "AVG" => Tok::Avg,
        _ => return None,
    })
}

/// Lex `src` into tokens (ending with [`Tok::Eof`]).
pub fn lex(src: &str) -> Result<Vec<Token>, EngineError> {
    let mut out = Vec::new();
    let chars: Vec<char> = src.chars().collect();
    let mut i = 0;
    let (mut line, mut col) = (1u32, 1u32);
    let n = chars.len();
    while i < n {
        let c = chars[i];
        let span = SqlSpan::new(line, col, c.to_string());
        let advance = |i: &mut usize, line: &mut u32, col: &mut u32| {
            if chars[*i] == '\n' {
                *line += 1;
                *col = 1;
            } else {
                *col += 1;
            }
            *i += 1;
        };
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                advance(&mut i, &mut line, &mut col);
            }
            '-' if i + 1 < n && chars[i + 1] == '-' => {
                // Line comment.
                while i < n && chars[i] != '\n' {
                    advance(&mut i, &mut line, &mut col);
                }
            }
            '\'' => {
                let (sl, sc) = (line, col);
                advance(&mut i, &mut line, &mut col);
                let mut s = String::new();
                loop {
                    if i >= n {
                        return Err(EngineError::SqlParse {
                            message: "unterminated string literal".to_string(),
                            span: SqlSpan::new(sl, sc, format!("'{s}")),
                        });
                    }
                    if chars[i] == '\'' {
                        advance(&mut i, &mut line, &mut col);
                        break;
                    }
                    s.push(chars[i]);
                    advance(&mut i, &mut line, &mut col);
                }
                out.push(Token {
                    tok: Tok::Str(s.clone()),
                    span: SqlSpan::new(sl, sc, format!("'{s}'")),
                });
            }
            '0'..='9' => {
                let (sl, sc) = (line, col);
                let mut s = String::new();
                while i < n && chars[i].is_ascii_digit() {
                    s.push(chars[i]);
                    advance(&mut i, &mut line, &mut col);
                }
                let v: i64 = s.parse().map_err(|_| EngineError::SqlParse {
                    message: "integer literal out of range".to_string(),
                    span: SqlSpan::new(sl, sc, s.clone()),
                })?;
                out.push(Token {
                    tok: Tok::Int(v),
                    span: SqlSpan::new(sl, sc, s),
                });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let (sl, sc) = (line, col);
                let mut s = String::new();
                while i < n && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    s.push(chars[i]);
                    advance(&mut i, &mut line, &mut col);
                }
                let tok = keyword(&s).unwrap_or(Tok::Ident(s.clone()));
                out.push(Token {
                    tok,
                    span: SqlSpan::new(sl, sc, s),
                });
            }
            _ => {
                let (sl, sc) = (line, col);
                let two = if i + 1 < n { Some(chars[i + 1]) } else { None };
                let (tok, len) = match (c, two) {
                    ('<', Some('=')) => (Tok::Le, 2),
                    ('<', Some('>')) => (Tok::Ne, 2),
                    ('>', Some('=')) => (Tok::Ge, 2),
                    ('!', Some('=')) => (Tok::Ne, 2),
                    ('<', _) => (Tok::Lt, 1),
                    ('>', _) => (Tok::Gt, 1),
                    ('=', _) => (Tok::Eq, 1),
                    (',', _) => (Tok::Comma, 1),
                    ('.', _) => (Tok::Dot, 1),
                    ('(', _) => (Tok::LParen, 1),
                    (')', _) => (Tok::RParen, 1),
                    ('*', _) => (Tok::Star, 1),
                    ('+', _) => (Tok::Plus, 1),
                    ('-', _) => (Tok::Minus, 1),
                    ('/', _) => (Tok::Slash, 1),
                    ('%', _) => (Tok::Percent, 1),
                    _ => {
                        return Err(EngineError::SqlParse {
                            message: format!("unexpected character '{c}'"),
                            span,
                        })
                    }
                };
                let fragment: String = chars[i..i + len].iter().collect();
                for _ in 0..len {
                    advance(&mut i, &mut line, &mut col);
                }
                out.push(Token {
                    tok,
                    span: SqlSpan::new(sl, sc, fragment),
                });
            }
        }
    }
    out.push(Token {
        tok: Tok::Eof,
        span: SqlSpan::new(line, col, ""),
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokens_carry_positions() {
        let toks = lex("SELECT a\nFROM t -- comment\nWHERE a >= 10").unwrap();
        let kinds: Vec<&Tok> = toks.iter().map(|t| &t.tok).collect();
        assert!(matches!(kinds[0], Tok::Select));
        assert!(matches!(kinds[1], Tok::Ident(s) if s == "a"));
        assert!(matches!(kinds[2], Tok::From));
        assert!(matches!(kinds[5], Tok::Ident(s) if s == "a"));
        assert!(matches!(kinds[6], Tok::Ge));
        assert_eq!(toks[2].span.line, 2);
        assert_eq!(toks[4].span.line, 3); // WHERE
        assert_eq!(toks[4].span.column, 1);
        assert!(matches!(toks.last().unwrap().tok, Tok::Eof));
    }

    #[test]
    fn keywords_are_case_insensitive_idents_are_not() {
        let toks = lex("select O_OrderKey FroM Orders").unwrap();
        assert!(matches!(toks[0].tok, Tok::Select));
        assert!(matches!(&toks[1].tok, Tok::Ident(s) if s == "O_OrderKey"));
        assert!(matches!(toks[2].tok, Tok::From));
        assert!(matches!(&toks[3].tok, Tok::Ident(s) if s == "Orders"));
    }

    #[test]
    fn strings_dates_and_errors() {
        let toks = lex("c_mktsegment = 'BUILDING' AND d < DATE '1995-03-15'").unwrap();
        assert!(toks
            .iter()
            .any(|t| matches!(&t.tok, Tok::Str(s) if s == "BUILDING")));
        assert!(toks.iter().any(|t| matches!(t.tok, Tok::Date)));
        assert!(matches!(
            lex("a = 'oops"),
            Err(EngineError::SqlParse { .. })
        ));
        assert!(matches!(lex("a ; b"), Err(EngineError::SqlParse { .. })));
    }
}
