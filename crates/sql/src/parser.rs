//! Recursive-descent parser for the supported SELECT subset.
//!
//! Grammar (keywords case-insensitive):
//!
//! ```text
//! query     := SELECT [DISTINCT] item (',' item)*
//!              FROM ident (',' ident)*
//!              ([INNER] JOIN ident ON expr '=' expr)*
//!              [WHERE expr] [GROUP BY expr (',' expr)*] [HAVING expr]
//!              [ORDER BY expr [ASC|DESC] (',' ...)*] [LIMIT int]
//! item      := expr [AS ident]
//! expr      := and_expr (OR and_expr)*
//! and_expr  := cmp_expr (AND cmp_expr)*
//! cmp_expr  := add_expr [('<'|'<='|'='|'<>'|'>='|'>') add_expr]
//! add_expr  := mul_expr (('+'|'-') mul_expr)*
//! mul_expr  := primary (('*'|'/'|'%') primary)*
//! primary   := int | '-' primary | string | DATE string | '(' expr ')'
//!            | agg '(' (expr|'*') ')' | ident ['.' ident]
//! ```

use crate::ast::{AggKind, AstExpr, BinOp, JoinClause, OrderItem, Query, SelectItem};
use crate::lexer::{lex, Tok, Token};
use engine::{EngineError, SqlSpan};

struct Parser {
    toks: Vec<Token>,
    pos: usize,
}

/// Parse one SELECT query; trailing input is an error.
pub fn parse(src: &str) -> Result<Query, EngineError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    let q = p.query()?;
    p.expect_eof()?;
    Ok(q)
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn span(&self) -> SqlSpan {
        self.toks[self.pos].span.clone()
    }

    fn bump(&mut self) -> Token {
        let t = self.toks[self.pos].clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, tok: &Tok) -> bool {
        if self.peek() == tok {
            self.bump();
            true
        } else {
            false
        }
    }

    fn err(&self, message: impl Into<String>) -> EngineError {
        EngineError::SqlParse {
            message: message.into(),
            span: self.span(),
        }
    }

    fn expect(&mut self, tok: Tok) -> Result<Token, EngineError> {
        if self.peek() == &tok {
            Ok(self.bump())
        } else {
            Err(self.err(format!(
                "expected {}, found {}",
                tok.describe(),
                self.peek().describe()
            )))
        }
    }

    fn expect_eof(&self) -> Result<(), EngineError> {
        if matches!(self.peek(), Tok::Eof) {
            Ok(())
        } else {
            Err(self.err(format!(
                "expected end of query, found {}",
                self.peek().describe()
            )))
        }
    }

    fn ident(&mut self, what: &str) -> Result<(String, SqlSpan), EngineError> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                let t = self.bump();
                Ok((s, t.span))
            }
            other => Err(self.err(format!("expected {what}, found {}", other.describe()))),
        }
    }

    fn query(&mut self) -> Result<Query, EngineError> {
        self.expect(Tok::Select)?;
        let distinct = self.eat(&Tok::Distinct);
        let mut select = vec![self.select_item()?];
        while self.eat(&Tok::Comma) {
            select.push(self.select_item()?);
        }
        self.expect(Tok::From)?;
        let mut from = vec![self.ident("a table name")?];
        while self.eat(&Tok::Comma) {
            from.push(self.ident("a table name")?);
        }
        let mut joins = Vec::new();
        loop {
            let span = self.span();
            if self.eat(&Tok::Inner) {
                self.expect(Tok::Join)?;
            } else if !self.eat(&Tok::Join) {
                break;
            }
            let (table, _) = self.ident("a table name")?;
            self.expect(Tok::On)?;
            let on_left = self.add_expr()?;
            self.expect(Tok::Eq)?;
            let on_right = self.add_expr()?;
            joins.push(JoinClause {
                table,
                on_left,
                on_right,
                span,
            });
        }
        let where_ = if self.eat(&Tok::Where) {
            Some(self.expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat(&Tok::Group) {
            self.expect(Tok::By)?;
            group_by.push(self.add_expr()?);
            while self.eat(&Tok::Comma) {
                group_by.push(self.add_expr()?);
            }
        }
        let having = if self.eat(&Tok::Having) {
            Some(self.expr()?)
        } else {
            None
        };
        let mut order_by = Vec::new();
        if self.eat(&Tok::Order) {
            self.expect(Tok::By)?;
            loop {
                let expr = self.add_expr()?;
                let desc = if self.eat(&Tok::Desc) {
                    true
                } else {
                    self.eat(&Tok::Asc);
                    false
                };
                order_by.push(OrderItem { expr, desc });
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
        }
        let limit = if self.eat(&Tok::Limit) {
            match self.peek().clone() {
                Tok::Int(v) if v >= 0 => {
                    self.bump();
                    Some(v as usize)
                }
                other => {
                    return Err(self.err(format!(
                        "LIMIT needs a non-negative integer, found {}",
                        other.describe()
                    )))
                }
            }
        } else {
            None
        };
        Ok(Query {
            distinct,
            select,
            from,
            joins,
            where_,
            group_by,
            having,
            order_by,
            limit,
        })
    }

    fn select_item(&mut self) -> Result<SelectItem, EngineError> {
        let expr = self.expr()?;
        let alias = if self.eat(&Tok::As) {
            Some(self.ident("an alias")?.0)
        } else {
            None
        };
        Ok(SelectItem { expr, alias })
    }

    fn expr(&mut self) -> Result<AstExpr, EngineError> {
        let mut lhs = self.and_expr()?;
        loop {
            let span = self.span();
            if !self.eat(&Tok::Or) {
                return Ok(lhs);
            }
            let rhs = self.and_expr()?;
            lhs = AstExpr::Binary {
                op: BinOp::Or,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
    }

    fn and_expr(&mut self) -> Result<AstExpr, EngineError> {
        let mut lhs = self.cmp_expr()?;
        loop {
            let span = self.span();
            if !self.eat(&Tok::And) {
                return Ok(lhs);
            }
            let rhs = self.cmp_expr()?;
            lhs = AstExpr::Binary {
                op: BinOp::And,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
    }

    fn cmp_expr(&mut self) -> Result<AstExpr, EngineError> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            Tok::Lt => BinOp::Lt,
            Tok::Le => BinOp::Le,
            Tok::Eq => BinOp::Eq,
            Tok::Ne => BinOp::Ne,
            Tok::Ge => BinOp::Ge,
            Tok::Gt => BinOp::Gt,
            _ => return Ok(lhs),
        };
        let span = self.span();
        self.bump();
        let rhs = self.add_expr()?;
        Ok(AstExpr::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
            span,
        })
    }

    fn add_expr(&mut self) -> Result<AstExpr, EngineError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                _ => return Ok(lhs),
            };
            let span = self.span();
            self.bump();
            let rhs = self.mul_expr()?;
            lhs = AstExpr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
    }

    fn mul_expr(&mut self) -> Result<AstExpr, EngineError> {
        let mut lhs = self.primary()?;
        loop {
            let op = match self.peek() {
                Tok::Star => BinOp::Mul,
                Tok::Slash => BinOp::Div,
                Tok::Percent => BinOp::Mod,
                _ => return Ok(lhs),
            };
            let span = self.span();
            self.bump();
            let rhs = self.primary()?;
            lhs = AstExpr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
    }

    fn primary(&mut self) -> Result<AstExpr, EngineError> {
        let span = self.span();
        match self.peek().clone() {
            Tok::Int(v) => {
                self.bump();
                Ok(AstExpr::Int(v))
            }
            Tok::Minus => {
                self.bump();
                // Negation folds into the literal or becomes `0 - expr`.
                match self.primary()? {
                    AstExpr::Int(v) => Ok(AstExpr::Int(-v)),
                    e => Ok(AstExpr::Binary {
                        op: BinOp::Sub,
                        lhs: Box::new(AstExpr::Int(0)),
                        rhs: Box::new(e),
                        span,
                    }),
                }
            }
            Tok::Str(s) => {
                self.bump();
                Ok(AstExpr::Str(s, span))
            }
            Tok::Date => {
                self.bump();
                match self.peek().clone() {
                    Tok::Str(s) => {
                        self.bump();
                        Ok(AstExpr::Date(s, span))
                    }
                    other => Err(self.err(format!(
                        "DATE needs a 'YYYY-MM-DD' string, found {}",
                        other.describe()
                    ))),
                }
            }
            Tok::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(Tok::RParen)?;
                Ok(e)
            }
            Tok::Count | Tok::Sum | Tok::Min | Tok::Max | Tok::Avg => {
                let kind = match self.peek() {
                    Tok::Count => AggKind::Count,
                    Tok::Sum => AggKind::Sum,
                    Tok::Min => AggKind::Min,
                    Tok::Max => AggKind::Max,
                    _ => AggKind::Avg,
                };
                self.bump();
                self.expect(Tok::LParen)?;
                let arg = if matches!(self.peek(), Tok::Star) {
                    if kind != AggKind::Count {
                        return Err(self.err(format!("{}(*) is not valid SQL", kind.sql())));
                    }
                    self.bump();
                    None
                } else {
                    Some(Box::new(self.add_expr()?))
                };
                self.expect(Tok::RParen)?;
                Ok(AstExpr::Agg { kind, arg, span })
            }
            Tok::Ident(first) => {
                self.bump();
                if self.eat(&Tok::Dot) {
                    let (name, _) = self.ident("a column name")?;
                    Ok(AstExpr::Column {
                        table: Some(first),
                        name,
                        span,
                    })
                } else {
                    Ok(AstExpr::Column {
                        table: None,
                        name: first,
                        span,
                    })
                }
            }
            other => Err(self.err(format!(
                "expected an expression, found {}",
                other.describe()
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_full_clause_set() {
        let q = parse(
            "SELECT o_orderkey, SUM(l_extendedprice * (100 - l_discount)) AS revenue \
             FROM customer, orders JOIN lineitem ON l_orderkey = o_orderkey \
             WHERE c_mktsegment = 'BUILDING' AND o_orderdate < DATE '1995-03-15' \
             GROUP BY o_orderkey, o_orderdate HAVING SUM(l_quantity) > 150 \
             ORDER BY revenue DESC, o_orderdate LIMIT 10",
        )
        .unwrap();
        assert_eq!(q.select.len(), 2);
        assert_eq!(q.select[1].alias.as_deref(), Some("revenue"));
        assert_eq!(q.from.len(), 2);
        assert_eq!(q.joins.len(), 1);
        assert_eq!(q.group_by.len(), 2);
        assert!(q.having.is_some());
        assert_eq!(q.order_by.len(), 2);
        assert!(q.order_by[0].desc);
        assert!(!q.order_by[1].desc);
        assert_eq!(q.limit, Some(10));
    }

    #[test]
    fn precedence_binds_as_expected() {
        let q = parse("SELECT a + b * c FROM t WHERE a < 1 AND b < 2 OR c < 3").unwrap();
        // a + (b * c)
        assert_eq!(q.select[0].expr.pretty(), "(a + (b * c))");
        // ((a<1 AND b<2) OR c<3)
        assert_eq!(
            q.where_.unwrap().pretty(),
            "(((a < 1) AND (b < 2)) OR (c < 3))"
        );
    }

    #[test]
    fn pretty_reparse_is_identity() {
        let src = "SELECT t.a AS x, COUNT(*) FROM t GROUP BY t.a \
                   ORDER BY x DESC LIMIT 5";
        let q = parse(src).unwrap();
        let q2 = parse(&q.pretty()).unwrap();
        assert!(q.same(&q2), "{} != {}", q.pretty(), q2.pretty());
    }

    #[test]
    fn errors_carry_spans() {
        let err = parse("SELECT a FROM").unwrap_err();
        match err {
            EngineError::SqlParse { span, .. } => assert_eq!(span.line, 1),
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse("SELECT FROM t").is_err());
        assert!(parse("SELECT a FROM t LIMIT x").is_err());
        assert!(parse("SELECT a FROM t extra").is_err());
        assert!(parse("SELECT SUM(*) FROM t").is_err());
    }
}
