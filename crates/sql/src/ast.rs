//! The SQL abstract syntax tree and its pretty-printer.
//!
//! The printer emits fully-parenthesized expressions, so
//! `parse(pretty(q))` reproduces the same tree regardless of operator
//! precedence — the identity the property tests in `tests/` lean on.

use engine::SqlSpan;
use std::fmt::Write;

/// Binary operators, SQL spelling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `>=`
    Ge,
    /// `>`
    Gt,
    /// `AND`
    And,
    /// `OR`
    Or,
}

impl BinOp {
    /// SQL spelling.
    pub fn sql(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Eq => "=",
            BinOp::Ne => "<>",
            BinOp::Ge => ">=",
            BinOp::Gt => ">",
            BinOp::And => "AND",
            BinOp::Or => "OR",
        }
    }

    /// Whether the operator produces a boolean.
    pub fn is_boolean(self) -> bool {
        !matches!(
            self,
            BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod
        )
    }
}

/// Aggregate functions the grammar accepts. (`AVG` parses but the binder
/// rejects it: the engine has no average kernel and integer division would
/// silently change results.)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggKind {
    /// `COUNT(*)` / `COUNT(expr)`
    Count,
    /// `SUM(expr)`
    Sum,
    /// `MIN(expr)`
    Min,
    /// `MAX(expr)`
    Max,
    /// `AVG(expr)` — parsed, rejected at bind time.
    Avg,
}

impl AggKind {
    /// SQL spelling.
    pub fn sql(self) -> &'static str {
        match self {
            AggKind::Count => "COUNT",
            AggKind::Sum => "SUM",
            AggKind::Min => "MIN",
            AggKind::Max => "MAX",
            AggKind::Avg => "AVG",
        }
    }
}

/// A scalar or aggregate expression.
#[derive(Debug, Clone)]
pub enum AstExpr {
    /// Column reference, optionally table-qualified.
    Column {
        /// Qualifier (`orders` in `orders.o_custkey`), if written.
        table: Option<String>,
        /// Column name.
        name: String,
        /// Source position.
        span: SqlSpan,
    },
    /// Integer literal.
    Int(i64),
    /// String literal (bound against a column dictionary).
    Str(String, SqlSpan),
    /// `DATE 'YYYY-MM-DD'` literal (bound to days since the epoch).
    Date(String, SqlSpan),
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<AstExpr>,
        /// Right operand.
        rhs: Box<AstExpr>,
        /// Source position of the operator.
        span: SqlSpan,
    },
    /// Aggregate call. `arg: None` is `COUNT(*)`.
    Agg {
        /// Function.
        kind: AggKind,
        /// Argument; `None` only for `COUNT(*)`.
        arg: Option<Box<AstExpr>>,
        /// Source position of the function name.
        span: SqlSpan,
    },
}

impl AstExpr {
    /// Structural equality, ignoring spans — what "same tree" means for
    /// the print/reparse identity.
    pub fn same(&self, other: &AstExpr) -> bool {
        match (self, other) {
            (
                AstExpr::Column { table, name, .. },
                AstExpr::Column {
                    table: t2,
                    name: n2,
                    ..
                },
            ) => table == t2 && name == n2,
            (AstExpr::Int(a), AstExpr::Int(b)) => a == b,
            (AstExpr::Str(a, _), AstExpr::Str(b, _)) => a == b,
            (AstExpr::Date(a, _), AstExpr::Date(b, _)) => a == b,
            (
                AstExpr::Binary { op, lhs, rhs, .. },
                AstExpr::Binary {
                    op: o2,
                    lhs: l2,
                    rhs: r2,
                    ..
                },
            ) => op == o2 && lhs.same(l2) && rhs.same(r2),
            (
                AstExpr::Agg { kind, arg, .. },
                AstExpr::Agg {
                    kind: k2, arg: a2, ..
                },
            ) => {
                kind == k2
                    && match (arg, a2) {
                        (None, None) => true,
                        (Some(a), Some(b)) => a.same(b),
                        _ => false,
                    }
            }
            _ => false,
        }
    }

    /// Fully-parenthesized SQL text.
    pub fn pretty(&self) -> String {
        match self {
            AstExpr::Column { table, name, .. } => match table {
                Some(t) => format!("{t}.{name}"),
                None => name.clone(),
            },
            AstExpr::Int(v) => v.to_string(),
            AstExpr::Str(s, _) => format!("'{s}'"),
            AstExpr::Date(s, _) => format!("DATE '{s}'"),
            AstExpr::Binary { op, lhs, rhs, .. } => {
                format!("({} {} {})", lhs.pretty(), op.sql(), rhs.pretty())
            }
            AstExpr::Agg { kind, arg, .. } => match arg {
                Some(a) => format!("{}({})", kind.sql(), a.pretty()),
                None => format!("{}(*)", kind.sql()),
            },
        }
    }

    /// The span nearest this expression's head, for error reporting.
    pub fn span(&self) -> SqlSpan {
        match self {
            AstExpr::Column { span, .. }
            | AstExpr::Str(_, span)
            | AstExpr::Date(_, span)
            | AstExpr::Binary { span, .. }
            | AstExpr::Agg { span, .. } => span.clone(),
            AstExpr::Int(v) => SqlSpan::new(0, 0, v.to_string()),
        }
    }
}

/// One item of the SELECT list.
#[derive(Debug, Clone)]
pub struct SelectItem {
    /// The expression.
    pub expr: AstExpr,
    /// `AS alias`, if written.
    pub alias: Option<String>,
}

/// One explicit `JOIN ... ON a = b` clause.
#[derive(Debug, Clone)]
pub struct JoinClause {
    /// Joined table.
    pub table: String,
    /// Left side of the ON equality.
    pub on_left: AstExpr,
    /// Right side of the ON equality.
    pub on_right: AstExpr,
    /// Source position of the JOIN keyword.
    pub span: SqlSpan,
}

/// One ORDER BY key.
#[derive(Debug, Clone)]
pub struct OrderItem {
    /// Sort expression (a column or SELECT-list alias).
    pub expr: AstExpr,
    /// `DESC`?
    pub desc: bool,
}

/// A parsed SELECT query.
#[derive(Debug, Clone)]
pub struct Query {
    /// `SELECT DISTINCT`?
    pub distinct: bool,
    /// SELECT list.
    pub select: Vec<SelectItem>,
    /// FROM tables, in order (comma syntax).
    pub from: Vec<(String, SqlSpan)>,
    /// Explicit JOIN clauses, in order.
    pub joins: Vec<JoinClause>,
    /// WHERE predicate.
    pub where_: Option<AstExpr>,
    /// GROUP BY keys.
    pub group_by: Vec<AstExpr>,
    /// HAVING predicate.
    pub having: Option<AstExpr>,
    /// ORDER BY keys.
    pub order_by: Vec<OrderItem>,
    /// LIMIT row count.
    pub limit: Option<usize>,
}

impl Query {
    /// Structural equality ignoring spans.
    pub fn same(&self, other: &Query) -> bool {
        self.distinct == other.distinct
            && self.select.len() == other.select.len()
            && self
                .select
                .iter()
                .zip(&other.select)
                .all(|(a, b)| a.alias == b.alias && a.expr.same(&b.expr))
            && self.from.len() == other.from.len()
            && self
                .from
                .iter()
                .zip(&other.from)
                .all(|((a, _), (b, _))| a == b)
            && self.joins.len() == other.joins.len()
            && self.joins.iter().zip(&other.joins).all(|(a, b)| {
                a.table == b.table && a.on_left.same(&b.on_left) && a.on_right.same(&b.on_right)
            })
            && match (&self.where_, &other.where_) {
                (None, None) => true,
                (Some(a), Some(b)) => a.same(b),
                _ => false,
            }
            && self.group_by.len() == other.group_by.len()
            && self
                .group_by
                .iter()
                .zip(&other.group_by)
                .all(|(a, b)| a.same(b))
            && match (&self.having, &other.having) {
                (None, None) => true,
                (Some(a), Some(b)) => a.same(b),
                _ => false,
            }
            && self.order_by.len() == other.order_by.len()
            && self
                .order_by
                .iter()
                .zip(&other.order_by)
                .all(|(a, b)| a.desc == b.desc && a.expr.same(&b.expr))
            && self.limit == other.limit
    }

    /// Render the query back to SQL (fully-parenthesized expressions).
    pub fn pretty(&self) -> String {
        let mut s = String::from("SELECT ");
        if self.distinct {
            s.push_str("DISTINCT ");
        }
        for (i, item) in self.select.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&item.expr.pretty());
            if let Some(a) = &item.alias {
                let _ = write!(s, " AS {a}");
            }
        }
        s.push_str(" FROM ");
        for (i, (t, _)) in self.from.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(t);
        }
        for j in &self.joins {
            let _ = write!(
                s,
                " JOIN {} ON {} = {}",
                j.table,
                j.on_left.pretty(),
                j.on_right.pretty()
            );
        }
        if let Some(w) = &self.where_ {
            let _ = write!(s, " WHERE {}", w.pretty());
        }
        if !self.group_by.is_empty() {
            s.push_str(" GROUP BY ");
            for (i, g) in self.group_by.iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                s.push_str(&g.pretty());
            }
        }
        if let Some(h) = &self.having {
            let _ = write!(s, " HAVING {}", h.pretty());
        }
        if !self.order_by.is_empty() {
            s.push_str(" ORDER BY ");
            for (i, o) in self.order_by.iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                s.push_str(&o.expr.pretty());
                if o.desc {
                    s.push_str(" DESC");
                }
            }
        }
        if let Some(l) = self.limit {
            let _ = write!(s, " LIMIT {l}");
        }
        s
    }
}
