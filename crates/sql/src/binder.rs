//! Name and type resolution: AST → bound [`LogicalPlan`].
//!
//! The binder resolves every identifier against the catalog's per-table
//! schemas, checks clause types (WHERE/HAVING must be boolean, SELECT items
//! under GROUP BY must be keys or aggregates), folds literals to the
//! engine's integer domain (dates to epoch days, strings to dictionary
//! codes), and assembles the join tree:
//!
//! - FROM-comma tables join left-deep in FROM order; each table after the
//!   first must be reachable through a two-table equality conjunct of the
//!   WHERE clause (its join edge). Explicit `JOIN ... ON` clauses attach
//!   the same way with their own edges.
//! - The already-joined side is the build (left) side, matching the
//!   engine's convention; the binder mirrors the join's output schema —
//!   key under the left name, probe key dropped, collisions suffixed — so
//!   every later clause resolves against exactly what the operator emits.
//! - Single-table WHERE conjuncts push down to their table's scan.
//!
//! Everything that can go wrong surfaces as a typed [`EngineError`] with
//! the source span of the offending token — never a panic.

use crate::ast::{AggKind, AstExpr, BinOp, Query};
use crate::logical::LogicalPlan;
use engine::{AggSpec, Catalog, EngineError, Expr, SqlSpan};
use groupby::AggFn;
use std::collections::{HashMap, HashSet};

/// One column of the current (possibly joined) scope.
#[derive(Debug, Clone)]
struct ColRef {
    /// Output name at this point of the plan (after collision suffixing).
    out: String,
    /// Table the values come from (for dictionary lookups).
    table: String,
    /// The column's name within that table.
    source: String,
}

struct Scope {
    cols: Vec<ColRef>,
}

impl Scope {
    fn names(&self) -> Vec<String> {
        self.cols.iter().map(|c| c.out.clone()).collect()
    }

    /// Resolve a possibly-qualified column reference to its output name.
    fn resolve(
        &self,
        table: &Option<String>,
        name: &str,
        span: &SqlSpan,
    ) -> Result<&ColRef, EngineError> {
        let matches: Vec<&ColRef> = self
            .cols
            .iter()
            .filter(|c| match table {
                Some(t) => &c.table == t && c.source == name,
                None => c.source == name || c.out == name,
            })
            .collect();
        match matches.len() {
            0 => Err(EngineError::SqlUnknownColumn {
                column: match table {
                    Some(t) => format!("{t}.{name}"),
                    None => name.to_string(),
                },
                available: self.names(),
                span: span.clone(),
            }),
            1 => Ok(matches[0]),
            _ => Err(EngineError::SqlAmbiguousColumn {
                column: name.to_string(),
                candidates: matches
                    .iter()
                    .map(|c| format!("{}.{}", c.table, c.source))
                    .collect(),
                span: span.clone(),
            }),
        }
    }
}

/// Check an expression is boolean (for WHERE/HAVING) or scalar (everywhere
/// else), recursing so comparisons never take boolean operands and AND/OR
/// never take scalar ones.
fn check_type(e: &AstExpr, want_bool: bool, context: &'static str) -> Result<(), EngineError> {
    let is_bool = matches!(e, AstExpr::Binary { op, .. } if op.is_boolean());
    if want_bool != is_bool {
        return Err(EngineError::SqlTypeMismatch {
            expected: if want_bool { "boolean" } else { "scalar" },
            found: if is_bool {
                "a boolean".to_string()
            } else {
                format!("the scalar '{}'", e.pretty())
            },
            context,
            span: e.span(),
        });
    }
    if let AstExpr::Binary { op, lhs, rhs, .. } = e {
        let operands_bool = matches!(op, BinOp::And | BinOp::Or);
        check_type(lhs, operands_bool, context)?;
        check_type(rhs, operands_bool, context)?;
    }
    Ok(())
}

/// Split a predicate into its top-level AND conjuncts, in source order.
fn conjuncts(e: &AstExpr) -> Vec<&AstExpr> {
    match e {
        AstExpr::Binary {
            op: BinOp::And,
            lhs,
            rhs,
            ..
        } => {
            let mut v = conjuncts(lhs);
            v.extend(conjuncts(rhs));
            v
        }
        other => vec![other],
    }
}

/// Column references of an expression, resolved against `scope`.
fn collect_refs<'a>(
    e: &'a AstExpr,
    scope: &Scope,
    out: &mut Vec<(ColRef, &'a AstExpr)>,
) -> Result<(), EngineError> {
    match e {
        AstExpr::Column { table, name, span } => {
            out.push((scope.resolve(table, name, span)?.clone(), e));
            Ok(())
        }
        AstExpr::Binary { lhs, rhs, .. } => {
            collect_refs(lhs, scope, out)?;
            collect_refs(rhs, scope, out)
        }
        AstExpr::Agg { arg, span, .. } => match arg {
            Some(a) => collect_refs(a, scope, out),
            None => Err(EngineError::SqlUnsupported {
                message: "COUNT(*) is only valid in the SELECT list of a grouped query".to_string(),
                span: span.clone(),
            }),
        },
        AstExpr::Int(_) | AstExpr::Str(..) | AstExpr::Date(..) => Ok(()),
    }
}

struct Binder<'a> {
    catalog: &'a Catalog,
}

impl<'a> Binder<'a> {
    /// Bind a scalar expression (no aggregates) against `scope`.
    fn scalar(&self, e: &AstExpr, scope: &Scope) -> Result<Expr, EngineError> {
        match e {
            AstExpr::Column { table, name, span } => {
                Ok(Expr::col(scope.resolve(table, name, span)?.out.clone()))
            }
            AstExpr::Int(v) => Ok(Expr::lit(*v)),
            AstExpr::Date(s, span) => {
                let days = columnar::date::parse_date(s).ok_or_else(|| EngineError::SqlParse {
                    message: format!("'{s}' is not a valid YYYY-MM-DD date"),
                    span: span.clone(),
                })?;
                Ok(Expr::lit(days))
            }
            AstExpr::Str(s, span) => Err(EngineError::SqlTypeMismatch {
                expected: "scalar",
                found: format!(
                    "the string '{s}' (strings only compare against \
                                dictionary-encoded columns with = or <>)"
                ),
                context: "expression",
                span: span.clone(),
            }),
            AstExpr::Agg { span, .. } => Err(EngineError::SqlUnsupported {
                message: "aggregate in a scalar context (aggregates belong in the \
                          SELECT list or HAVING of a grouped query)"
                    .to_string(),
                span: span.clone(),
            }),
            AstExpr::Binary { op, lhs, rhs, span } => {
                // String comparisons fold the literal to its dictionary
                // code so the device only ever sees integers (Section 5.3
                // encoding done at bind time, not kernel time).
                if matches!(op, BinOp::Eq | BinOp::Ne) {
                    if let Some(folded) = self.fold_str_cmp(op, lhs, rhs, span, scope)? {
                        return Ok(folded);
                    }
                }
                let l = self.scalar(lhs, scope)?;
                let r = self.scalar(rhs, scope)?;
                Ok(match op {
                    BinOp::Add => l.add(r),
                    BinOp::Sub => l.sub(r),
                    BinOp::Mul => l.mul(r),
                    BinOp::Div => l.div(r),
                    BinOp::Mod => l.rem(r),
                    BinOp::Lt => l.lt(r),
                    BinOp::Le => l.le(r),
                    BinOp::Eq => l.eq(r),
                    BinOp::Ne => l.ne(r),
                    BinOp::Ge => l.ge(r),
                    BinOp::Gt => l.gt(r),
                    BinOp::And => l.and(r),
                    BinOp::Or => l.or(r),
                })
            }
        }
    }

    /// `column = 'literal'` (either orientation): fold the string to the
    /// column's dictionary code. Returns `None` when neither side is a
    /// string literal.
    fn fold_str_cmp(
        &self,
        op: &BinOp,
        lhs: &AstExpr,
        rhs: &AstExpr,
        span: &SqlSpan,
        scope: &Scope,
    ) -> Result<Option<Expr>, EngineError> {
        let (col_side, lit, lit_span) = match (lhs, rhs) {
            (c, AstExpr::Str(s, sp)) => (c, s, sp),
            (AstExpr::Str(s, sp), c) => (c, s, sp),
            _ => return Ok(None),
        };
        let AstExpr::Column {
            table,
            name,
            span: cspan,
        } = col_side
        else {
            return Err(EngineError::SqlTypeMismatch {
                expected: "a dictionary-encoded column",
                found: format!("'{}'", col_side.pretty()),
                context: "string comparison",
                span: span.clone(),
            });
        };
        let r = scope.resolve(table, name, cspan)?;
        let dict = self
            .catalog
            .schema(&r.table)?
            .dictionaries
            .get(&r.source)
            .ok_or_else(|| EngineError::SqlUnsupported {
                message: format!(
                    "column '{}' has no string dictionary; only dictionary-encoded \
                     columns compare against string literals",
                    r.out
                ),
                span: cspan.clone(),
            })?;
        let code =
            dict.iter()
                .position(|v| v == lit)
                .ok_or_else(|| EngineError::SqlUnsupported {
                    message: format!(
                        "'{lit}' is not in the dictionary of column '{}' (values: {:?})",
                        r.out, dict
                    ),
                    span: lit_span.clone(),
                })? as i64;
        let col = Expr::col(r.out.clone());
        Ok(Some(match op {
            BinOp::Eq => col.eq(Expr::lit(code)),
            _ => col.ne(Expr::lit(code)),
        }))
    }
}

/// Does the expression contain an aggregate call?
fn has_agg(e: &AstExpr) -> bool {
    match e {
        AstExpr::Agg { .. } => true,
        AstExpr::Binary { lhs, rhs, .. } => has_agg(lhs) || has_agg(rhs),
        _ => false,
    }
}

/// Bind a parsed query against the catalog into a [`LogicalPlan`].
pub fn bind(query: &Query, catalog: &Catalog) -> Result<LogicalPlan, EngineError> {
    let b = Binder { catalog };

    // --- Tables: FROM list then JOIN clauses, all verified, no repeats. ---
    let mut tables: Vec<(String, SqlSpan)> = query.from.clone();
    for j in &query.joins {
        tables.push((j.table.clone(), j.span.clone()));
    }
    let mut seen = HashSet::new();
    for (t, span) in &tables {
        if catalog.schema(t).is_err() {
            return Err(EngineError::SqlUnknownTable {
                table: t.clone(),
                span: span.clone(),
            });
        }
        if !seen.insert(t.clone()) {
            return Err(EngineError::SqlUnsupported {
                message: format!("table '{t}' appears twice (self-joins are not supported)"),
                span: span.clone(),
            });
        }
    }

    // Pre-join resolution scope: every column of every table.
    let mut all = Scope { cols: Vec::new() };
    for (t, _) in &tables {
        for name in catalog.schema(t)?.column_names() {
            all.cols.push(ColRef {
                out: name.clone(),
                table: t.clone(),
                source: name,
            });
        }
    }

    // --- WHERE: type-check, split, classify each conjunct. ---
    struct Edge {
        a: ColRef,
        b: ColRef,
        used: bool,
        span: SqlSpan,
    }
    let mut pushed: HashMap<String, Vec<Expr>> = HashMap::new();
    let mut edges: Vec<Edge> = Vec::new();
    if let Some(w) = &query.where_ {
        check_type(w, true, "WHERE")?;
        for c in conjuncts(w) {
            let mut refs = Vec::new();
            collect_refs(c, &all, &mut refs)?;
            let ref_tables: HashSet<&str> = refs.iter().map(|(r, _)| r.table.as_str()).collect();
            match ref_tables.len() {
                0 | 1 => {
                    // Single-table (or constant) predicate: push to the
                    // table's scan, bound against that table alone.
                    let t = refs
                        .first()
                        .map(|(r, _)| r.table.clone())
                        .unwrap_or_else(|| tables[0].0.clone());
                    let scope = Scope {
                        cols: all.cols.iter().filter(|c| c.table == t).cloned().collect(),
                    };
                    pushed.entry(t).or_default().push(b.scalar(c, &scope)?);
                }
                2 => {
                    // Two tables: must be a plain `a.x = b.y` join edge.
                    let edge = match c {
                        AstExpr::Binary {
                            op: BinOp::Eq,
                            lhs,
                            rhs,
                            span,
                        } => match (lhs.as_ref(), rhs.as_ref()) {
                            (AstExpr::Column { .. }, AstExpr::Column { .. }) => Some(Edge {
                                a: refs[0].0.clone(),
                                b: refs[1].0.clone(),
                                used: false,
                                span: span.clone(),
                            }),
                            _ => None,
                        },
                        _ => None,
                    };
                    match edge {
                        Some(e) => edges.push(e),
                        None => {
                            return Err(EngineError::SqlUnsupported {
                                message: format!(
                                    "predicate '{}' spans two tables but is not a plain \
                                     column equality (only equi-joins are supported)",
                                    c.pretty()
                                ),
                                span: c.span(),
                            })
                        }
                    }
                }
                _ => {
                    return Err(EngineError::SqlUnsupported {
                        message: format!(
                            "predicate '{}' references more than two tables",
                            c.pretty()
                        ),
                        span: c.span(),
                    })
                }
            }
        }
    }
    for j in &query.joins {
        let mut refs = Vec::new();
        collect_refs(&j.on_left, &all, &mut refs)?;
        collect_refs(&j.on_right, &all, &mut refs)?;
        if refs.len() != 2
            || !matches!(j.on_left, AstExpr::Column { .. })
            || !matches!(j.on_right, AstExpr::Column { .. })
        {
            return Err(EngineError::SqlUnsupported {
                message: "JOIN ... ON must be a plain column equality".to_string(),
                span: j.span.clone(),
            });
        }
        edges.push(Edge {
            a: refs[0].0.clone(),
            b: refs[1].0.clone(),
            used: false,
            span: j.span.clone(),
        });
    }

    // --- Left-deep join tree in table order; WHERE edges connect. ---
    let table_plan = |t: &str| -> LogicalPlan {
        let mut p = LogicalPlan::Scan {
            table: t.to_string(),
        };
        if let Some(filters) = pushed.get(t) {
            for f in filters {
                p = LogicalPlan::Filter {
                    input: Box::new(p),
                    predicate: f.clone(),
                };
            }
        }
        p
    };
    let mut plan = table_plan(&tables[0].0);
    // The evolving joined schema, mirroring the engine join's output
    // (key under the left name, probe key dropped, collisions suffixed).
    let mut schema: Vec<ColRef> = all
        .cols
        .iter()
        .filter(|c| c.table == tables[0].0)
        .cloned()
        .collect();
    let mut joined: HashSet<String> = HashSet::new();
    joined.insert(tables[0].0.clone());
    for (t, span) in &tables[1..] {
        // Find this table's edge to the already-joined set.
        let edge = edges
            .iter_mut()
            .find(|e| {
                !e.used
                    && ((e.a.table == *t && joined.contains(&e.b.table))
                        || (e.b.table == *t && joined.contains(&e.a.table)))
            })
            .ok_or_else(|| EngineError::SqlUnsupported {
                message: format!(
                    "no join condition connects '{t}' to the tables before it \
                     (cross joins are not supported)"
                ),
                span: span.clone(),
            })?;
        edge.used = true;
        let (in_scope, new) = if edge.a.table == *t {
            (&edge.b, &edge.a)
        } else {
            (&edge.a, &edge.b)
        };
        // The in-scope key resolves through the *current* joined schema
        // (it may have been renamed by an earlier collision).
        let left_key = schema
            .iter()
            .find(|c| c.table == in_scope.table && c.source == in_scope.source)
            .ok_or_else(|| EngineError::SqlUnknownColumn {
                column: format!("{}.{}", in_scope.table, in_scope.source),
                available: schema.iter().map(|c| c.out.clone()).collect(),
                span: edge.span.clone(),
            })?
            .out
            .clone();
        plan = LogicalPlan::Join {
            left: Box::new(plan),
            right: Box::new(table_plan(t)),
            left_key: left_key.clone(),
            right_key: new.source.clone(),
        };
        // Mirror the join's output schema: key (left name), left
        // payloads, right payloads sans probe key, suffixed on collision.
        let mut out: Vec<ColRef> = Vec::new();
        let key_ref = schema.iter().find(|c| c.out == left_key).unwrap().clone();
        out.push(key_ref);
        for c in schema.iter().filter(|c| c.out != left_key) {
            out.push(c.clone());
        }
        for name in catalog.schema(t)?.column_names() {
            if name != new.source {
                out.push(ColRef {
                    out: name.clone(),
                    table: t.clone(),
                    source: name,
                });
            }
        }
        let mut used: HashMap<String, usize> = HashMap::new();
        for c in &mut out {
            let n = used.entry(c.out.clone()).or_insert(0);
            *n += 1;
            if *n > 1 {
                c.out = format!("{}_{n}", c.out);
            }
        }
        schema = out;
        joined.insert(t.clone());
    }
    if let Some(e) = edges.iter().find(|e| !e.used) {
        return Err(EngineError::SqlUnsupported {
            message: "join condition does not fit the left-deep table order".to_string(),
            span: e.span.clone(),
        });
    }
    let scope = Scope { cols: schema };

    // --- Grouping vs plain selection. ---
    let grouped = !query.group_by.is_empty();
    if !grouped {
        if let Some(item) = query.select.iter().find(|i| has_agg(&i.expr)) {
            return Err(EngineError::SqlUnsupported {
                message: "aggregates need a GROUP BY (global aggregation is not supported)"
                    .to_string(),
                span: item.expr.span(),
            });
        }
        if let Some(h) = &query.having {
            return Err(EngineError::SqlUnsupported {
                message: "HAVING needs a GROUP BY".to_string(),
                span: h.span(),
            });
        }
    }

    let mut output: Vec<String> = Vec::new(); // final output names, SELECT order
    if grouped {
        // Group keys: plain columns, resolved through the joined schema.
        let mut keys: Vec<String> = Vec::new();
        let mut gspan = SqlSpan::default();
        for g in &query.group_by {
            let AstExpr::Column { table, name, span } = g else {
                return Err(EngineError::SqlUnsupported {
                    message: format!("GROUP BY expression '{}' (only columns group)", g.pretty()),
                    span: g.span(),
                });
            };
            gspan = span.clone();
            keys.push(scope.resolve(table, name, span)?.out.clone());
        }

        // Aggregates from SELECT and HAVING, structurally deduplicated.
        struct BoundAgg {
            fingerprint: String,
            output: String,
            input: String,
            fun: AggFn,
        }
        let mut aggs: Vec<BoundAgg> = Vec::new();
        let mut computed: Vec<(String, Expr)> = Vec::new(); // pre-agg projections
        let mut used_names: HashSet<String> = keys.iter().cloned().collect();
        let bind_agg = |kind: &AggKind,
                        arg: &Option<Box<AstExpr>>,
                        span: &SqlSpan,
                        alias: Option<&str>,
                        aggs: &mut Vec<BoundAgg>,
                        computed: &mut Vec<(String, Expr)>,
                        used_names: &mut HashSet<String>|
         -> Result<String, EngineError> {
            let fun = match kind {
                AggKind::Count => AggFn::Count,
                AggKind::Sum => AggFn::Sum,
                AggKind::Min => AggFn::Min,
                AggKind::Max => AggFn::Max,
                AggKind::Avg => {
                    return Err(EngineError::SqlUnsupported {
                        message: "AVG is not supported (no average kernel; integer \
                                  division would silently round)"
                            .to_string(),
                        span: span.clone(),
                    })
                }
            };
            let fingerprint = match arg {
                Some(a) => format!("{}({})", kind.sql(), a.pretty()),
                None => "COUNT(*)".to_string(),
            };
            if let Some(existing) = aggs.iter().find(|a| a.fingerprint == fingerprint) {
                return Ok(existing.output.clone());
            }
            // Input column: a plain column passes through; a computed
            // argument becomes a synthesized pre-aggregation projection.
            let input = match arg.as_deref() {
                None => keys[0].clone(), // COUNT(*): any column counts rows
                Some(AstExpr::Column { table, name, span }) => {
                    scope.resolve(table, name, span)?.out.clone()
                }
                Some(computed_arg) => {
                    check_type(computed_arg, false, "aggregate argument")?;
                    let name = format!("__agg{}", computed.len());
                    computed.push((name.clone(), b.scalar(computed_arg, &scope)?));
                    name
                }
            };
            // Output name: the alias, else a deterministic default.
            let base = match alias {
                Some(a) => a.to_string(),
                None => match arg.as_deref() {
                    None => "count".to_string(),
                    Some(AstExpr::Column { name, .. }) => {
                        format!("{}_{name}", kind.sql().to_ascii_lowercase())
                    }
                    Some(_) => kind.sql().to_ascii_lowercase(),
                },
            };
            let mut output = base.clone();
            let mut i = 1;
            while !used_names.insert(output.clone()) {
                i += 1;
                output = format!("{base}_{i}");
            }
            aggs.push(BoundAgg {
                fingerprint,
                output: output.clone(),
                input,
                fun,
            });
            Ok(output)
        };

        // SELECT items: group keys (possibly aliased) or aggregates.
        for item in &query.select {
            match &item.expr {
                AstExpr::Agg { kind, arg, span } => {
                    let name = bind_agg(
                        kind,
                        arg,
                        span,
                        item.alias.as_deref(),
                        &mut aggs,
                        &mut computed,
                        &mut used_names,
                    )?;
                    output.push(name);
                }
                AstExpr::Column { table, name, span } => {
                    let out = scope.resolve(table, name, span)?.out.clone();
                    if !keys.contains(&out) {
                        return Err(EngineError::SqlUnsupported {
                            message: format!("column '{out}' is neither grouped nor aggregated"),
                            span: span.clone(),
                        });
                    }
                    output.push(item.alias.clone().unwrap_or(out));
                }
                other => {
                    return Err(EngineError::SqlUnsupported {
                        message: format!(
                            "SELECT item '{}' must be a group column or an aggregate",
                            other.pretty()
                        ),
                        span: other.span(),
                    })
                }
            }
        }

        // HAVING: aggregates match SELECT's structurally or become hidden
        // aggregates; everything else must be a group column.
        let having_pred = match &query.having {
            None => None,
            Some(h) => {
                check_type(h, true, "HAVING")?;
                type AggRewriter<'a> = dyn FnMut(&AggKind, &Option<Box<AstExpr>>, &SqlSpan) -> Result<String, EngineError>
                    + 'a;
                fn rewrite(e: &AstExpr, f: &mut AggRewriter<'_>) -> Result<AstExpr, EngineError> {
                    Ok(match e {
                        AstExpr::Agg { kind, arg, span } => AstExpr::Column {
                            table: None,
                            name: f(kind, arg, span)?,
                            span: span.clone(),
                        },
                        AstExpr::Binary { op, lhs, rhs, span } => AstExpr::Binary {
                            op: *op,
                            lhs: Box::new(rewrite(lhs, f)?),
                            rhs: Box::new(rewrite(rhs, f)?),
                            span: span.clone(),
                        },
                        other => other.clone(),
                    })
                }
                let rewritten = rewrite(h, &mut |kind, arg, span| {
                    bind_agg(
                        kind,
                        arg,
                        span,
                        None,
                        &mut aggs,
                        &mut computed,
                        &mut used_names,
                    )
                })?;
                Some(rewritten)
            }
        };

        // Pre-aggregation projection: the group keys, every plain
        // aggregate input not already present, and the computed inputs.
        // This is also the late-materialization narrowing: only these
        // columns cross the aggregation boundary.
        let mut pre: Vec<(String, Expr)> = keys
            .iter()
            .map(|k| (k.clone(), Expr::col(k.clone())))
            .collect();
        for a in &aggs {
            if !pre.iter().any(|(n, _)| n == &a.input)
                && !computed.iter().any(|(n, _)| n == &a.input)
            {
                pre.push((a.input.clone(), Expr::col(a.input.clone())));
            }
        }
        pre.extend(computed.iter().cloned());
        plan = LogicalPlan::Project {
            input: Box::new(plan),
            exprs: pre,
        };
        plan = LogicalPlan::Aggregate {
            input: Box::new(plan),
            group_by: keys.clone(),
            aggs: aggs
                .iter()
                .map(|a| AggSpec::new(a.fun, a.input.clone(), a.output.clone()))
                .collect(),
            span: gspan,
        };
        // Aggregate output scope: keys then aggregate outputs.
        let agg_scope = Scope {
            cols: keys
                .iter()
                .chain(aggs.iter().map(|a| &a.output))
                .map(|n| ColRef {
                    out: n.clone(),
                    table: String::new(),
                    source: n.clone(),
                })
                .collect(),
        };
        if let Some(h) = having_pred {
            plan = LogicalPlan::Filter {
                input: Box::new(plan),
                predicate: b.scalar(&h, &agg_scope)?,
            };
        }
        // Final projection: SELECT order and aliases. (Hidden HAVING
        // aggregates drop here.)
        let mut final_exprs: Vec<(String, Expr)> = Vec::new();
        for (item, out_name) in query.select.iter().zip(&output) {
            let source = match &item.expr {
                AstExpr::Column { table, name, span } => {
                    scope.resolve(table, name, span)?.out.clone()
                }
                _ => out_name.clone(), // aggregate: already named
            };
            final_exprs.push((out_name.clone(), Expr::col(source)));
        }
        plan = LogicalPlan::Project {
            input: Box::new(plan),
            exprs: final_exprs,
        };
    } else {
        // Plain selection: project the SELECT list.
        let mut exprs: Vec<(String, Expr)> = Vec::new();
        for (i, item) in query.select.iter().enumerate() {
            check_type(&item.expr, false, "SELECT")?;
            let name = match (&item.alias, &item.expr) {
                (Some(a), _) => a.clone(),
                (None, AstExpr::Column { table, name, span }) => {
                    scope.resolve(table, name, span)?.out.clone()
                }
                (None, _) => format!("col{i}"),
            };
            exprs.push((name.clone(), b.scalar(&item.expr, &scope)?));
            output.push(name);
        }
        plan = LogicalPlan::Project {
            input: Box::new(plan),
            exprs,
        };
    }

    // --- DISTINCT: exactly one output column. ---
    if query.distinct {
        if output.len() != 1 {
            return Err(EngineError::SqlUnsupported {
                message: "SELECT DISTINCT supports exactly one column".to_string(),
                span: query.select[0].expr.span(),
            });
        }
        plan = LogicalPlan::Distinct {
            input: Box::new(plan),
            column: output[0].clone(),
        };
    }

    // --- ORDER BY: keys resolve against the output schema. ---
    if !query.order_by.is_empty() {
        let mut keys = Vec::new();
        let mut span = SqlSpan::default();
        for o in &query.order_by {
            let AstExpr::Column {
                table: None,
                name,
                span: ospan,
            } = &o.expr
            else {
                return Err(EngineError::SqlUnsupported {
                    message: format!(
                        "ORDER BY key '{}' must be an output column or alias",
                        o.expr.pretty()
                    ),
                    span: o.expr.span(),
                });
            };
            if !output.contains(name) {
                return Err(EngineError::SqlUnknownColumn {
                    column: name.clone(),
                    available: output.clone(),
                    span: ospan.clone(),
                });
            }
            span = ospan.clone();
            keys.push((name.clone(), o.desc));
        }
        plan = LogicalPlan::Sort {
            input: Box::new(plan),
            keys,
            span,
        };
    }

    // --- LIMIT. ---
    if let Some(count) = query.limit {
        plan = LogicalPlan::Limit {
            input: Box::new(plan),
            count,
        };
    }
    Ok(plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use columnar::Column;
    use engine::Table;
    use sim::Device;

    fn catalog(dev: &Device) -> Catalog {
        let mut c = Catalog::new();
        c.insert(Table::new(
            "orders",
            vec![
                ("o_id", Column::from_i32(dev, vec![1, 2, 3, 4], "o_id")),
                (
                    "o_cust",
                    Column::from_i32(dev, vec![10, 11, 10, 12], "o_cust"),
                ),
                (
                    "o_price",
                    Column::from_i64(dev, vec![50, 60, 70, 80], "o_price"),
                ),
                ("tag", Column::from_i32(dev, vec![0, 0, 1, 1], "tag")),
            ],
        ));
        c.insert(Table::new(
            "customer",
            vec![
                ("c_id", Column::from_i32(dev, vec![10, 11, 12], "c_id")),
                ("c_seg", Column::from_i32(dev, vec![0, 1, 0], "c_seg")),
                ("tag", Column::from_i32(dev, vec![7, 8, 9], "tag")),
            ],
        ));
        c.set_primary_key("customer", "c_id").unwrap();
        c.set_dictionary("customer", "c_seg", vec!["AUTO".into(), "BUILDING".into()])
            .unwrap();
        c
    }

    fn bind_sql(sql: &str, cat: &Catalog) -> Result<LogicalPlan, EngineError> {
        bind(&parse(sql).expect("parse"), cat)
    }

    #[test]
    fn unknown_table_and_column_report_spans() {
        let dev = Device::a100();
        let cat = catalog(&dev);
        match bind_sql("SELECT o_id FROM nope", &cat) {
            Err(EngineError::SqlUnknownTable { table, span }) => {
                assert_eq!(table, "nope");
                assert_eq!((span.line, span.column), (1, 18));
            }
            other => panic!("expected unknown table, got {other:?}"),
        }
        match bind_sql("SELECT o_missing FROM orders", &cat) {
            Err(EngineError::SqlUnknownColumn {
                column, available, ..
            }) => {
                assert_eq!(column, "o_missing");
                assert!(available.contains(&"o_id".to_string()), "{available:?}");
            }
            other => panic!("expected unknown column, got {other:?}"),
        }
    }

    #[test]
    fn unqualified_collisions_are_ambiguous_qualified_are_not() {
        let dev = Device::a100();
        let cat = catalog(&dev);
        let err = bind_sql("SELECT tag FROM orders, customer WHERE o_cust = c_id", &cat);
        match err {
            Err(EngineError::SqlAmbiguousColumn {
                column, candidates, ..
            }) => {
                assert_eq!(column, "tag");
                assert_eq!(candidates.len(), 2, "{candidates:?}");
            }
            other => panic!("expected ambiguity, got {other:?}"),
        }
        bind_sql(
            "SELECT orders.tag FROM orders, customer WHERE o_cust = c_id",
            &cat,
        )
        .expect("qualified reference resolves");
    }

    #[test]
    fn where_must_be_boolean() {
        let dev = Device::a100();
        let cat = catalog(&dev);
        match bind_sql("SELECT o_id FROM orders WHERE o_id + 1", &cat) {
            Err(EngineError::SqlTypeMismatch {
                expected, context, ..
            }) => {
                assert_eq!(expected, "boolean");
                assert_eq!(context, "WHERE");
            }
            other => panic!("expected type mismatch, got {other:?}"),
        }
        // Boolean where a scalar is needed is just as wrong.
        assert!(matches!(
            bind_sql("SELECT o_id FROM orders WHERE (o_id < 2) + 1 = 1", &cat),
            Err(EngineError::SqlTypeMismatch { .. })
        ));
    }

    #[test]
    fn avg_and_unknown_dictionary_values_are_unsupported() {
        let dev = Device::a100();
        let cat = catalog(&dev);
        assert!(matches!(
            bind_sql("SELECT AVG(o_price) FROM orders GROUP BY o_id", &cat),
            Err(EngineError::SqlUnsupported { .. })
        ));
        // String literal against a column with no dictionary.
        assert!(matches!(
            bind_sql("SELECT o_id FROM orders WHERE o_id = 'x'", &cat),
            Err(EngineError::SqlUnsupported { .. })
        ));
        // Dictionary exists but the value doesn't.
        assert!(matches!(
            bind_sql("SELECT c_id FROM customer WHERE c_seg = 'NOPE'", &cat),
            Err(EngineError::SqlUnsupported { .. })
        ));
        // A real dictionary value binds fine.
        bind_sql("SELECT c_id FROM customer WHERE c_seg = 'BUILDING'", &cat)
            .expect("dictionary fold");
    }

    #[test]
    fn join_tree_and_grouping_shape() {
        let dev = Device::a100();
        let cat = catalog(&dev);
        let plan = bind_sql(
            "SELECT c_id, SUM(o_price) AS total FROM customer, orders \
             WHERE c_id = o_cust AND o_price > 55 \
             GROUP BY c_id HAVING SUM(o_price) > 100 ORDER BY total DESC LIMIT 2",
            &cat,
        )
        .expect("bind");
        let r = plan.render();
        for needle in [
            "Join(c_id=o_cust)",
            "Aggregate(by c_id; 1 aggs)",
            "Sort(by total desc)",
            "Limit(2)",
        ] {
            assert!(r.contains(needle), "missing {needle} in:\n{r}");
        }
        // The single-table conjunct pushed below the join: the deepest
        // Filter (the pushed one, not HAVING's) renders after the Join line.
        let join_at = r.find("Join").unwrap();
        let filter_at = r.rfind("Filter").unwrap();
        assert!(
            filter_at > join_at,
            "pushed filter should render under the join:\n{r}"
        );
    }

    #[test]
    fn unused_join_edges_and_unreachable_tables_error() {
        let dev = Device::a100();
        let cat = catalog(&dev);
        // No edge connecting customer to orders at all.
        assert!(matches!(
            bind_sql("SELECT o_id FROM orders, customer", &cat),
            Err(EngineError::SqlUnsupported { .. })
        ));
        // HAVING without GROUP BY.
        assert!(matches!(
            bind_sql("SELECT o_id FROM orders HAVING o_id > 1", &cat),
            Err(EngineError::SqlUnsupported { .. })
        ));
    }

    #[test]
    fn binder_never_panics_on_hostile_input() {
        let dev = Device::a100();
        let cat = catalog(&dev);
        for sql in [
            "SELECT",
            "SELECT FROM orders",
            "SELECT * FROM orders",
            "SELECT o_id FROM orders WHERE",
            "SELECT o_id FROM orders GROUP BY",
            "SELECT o_id FROM orders LIMIT -1",
            "SELECT o_id FROM orders ORDER BY nope",
            "SELECT COUNT(*) FROM orders, orders",
            "SELECT o_id, o_id FROM orders WHERE 'a' = 'b'",
        ] {
            let res = parse(sql).and_then(|q| bind(&q, &cat));
            assert!(res.is_err(), "{sql:?} should fail cleanly");
        }
    }
}
