//! The bound logical plan: names resolved, types checked, expressions
//! already in engine form — but grouping and ordering still multi-column.
//!
//! This is the IR between the binder and [`crate::lower()`]: everything the
//! AST could get wrong (unknown names, ambiguity, type errors) is gone,
//! while the two SQL shapes the engine's single-key kernels cannot run
//! directly — multi-column GROUP BY and multi-key ORDER BY — are still
//! explicit, for the lowering to rewrite via composite-key packing or
//! functional-dependency reduction.

use engine::{AggSpec, Expr, SqlSpan};

/// A bound logical plan node.
#[derive(Debug, Clone)]
pub enum LogicalPlan {
    /// Read a catalog table.
    Scan {
        /// Table name (verified against the catalog).
        table: String,
    },
    /// Keep rows satisfying a (boolean-checked) predicate.
    Filter {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Bound predicate.
        predicate: Expr,
    },
    /// Compute output columns.
    Project {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// `(output name, bound expression)` pairs.
        exprs: Vec<(String, Expr)>,
    },
    /// Equi-join; left is the build side, matching the engine convention
    /// (output = key under the left name, left payloads, right payloads).
    Join {
        /// Build side.
        left: Box<LogicalPlan>,
        /// Probe side.
        right: Box<LogicalPlan>,
        /// Build key column.
        left_key: String,
        /// Probe key column.
        right_key: String,
    },
    /// Grouped aggregation over one *or more* key columns; the lowering
    /// rewrites multi-column keys onto the single-key kernels. Output
    /// schema: the group columns in order, then the aggregate outputs.
    Aggregate {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Group-key columns.
        group_by: Vec<String>,
        /// Aggregates.
        aggs: Vec<AggSpec>,
        /// Source position of the GROUP BY clause, for lowering errors.
        span: SqlSpan,
    },
    /// Distinct values of one column.
    Distinct {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Column to deduplicate.
        column: String,
    },
    /// Order by one or more keys; the lowering packs multi-key sorts.
    Sort {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// `(column, descending)` keys, major first.
        keys: Vec<(String, bool)>,
        /// Source position of the ORDER BY clause, for lowering errors.
        span: SqlSpan,
    },
    /// Keep the first `count` rows.
    Limit {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Rows to keep.
        count: usize,
    },
}

impl LogicalPlan {
    /// Indented one-line-per-node rendering (for tests and debugging).
    pub fn render(&self) -> String {
        let mut s = String::new();
        self.render_into(&mut s, 0);
        s
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        use std::fmt::Write;
        let pad = "  ".repeat(depth);
        match self {
            LogicalPlan::Scan { table } => {
                let _ = writeln!(out, "{pad}Scan({table})");
            }
            LogicalPlan::Filter { input, .. } => {
                let _ = writeln!(out, "{pad}Filter");
                input.render_into(out, depth + 1);
            }
            LogicalPlan::Project { input, exprs } => {
                let names: Vec<&str> = exprs.iter().map(|(n, _)| n.as_str()).collect();
                let _ = writeln!(out, "{pad}Project[{}]", names.join(", "));
                input.render_into(out, depth + 1);
            }
            LogicalPlan::Join {
                left,
                right,
                left_key,
                right_key,
            } => {
                let _ = writeln!(out, "{pad}Join({left_key}={right_key})");
                left.render_into(out, depth + 1);
                right.render_into(out, depth + 1);
            }
            LogicalPlan::Aggregate {
                input,
                group_by,
                aggs,
                ..
            } => {
                let _ = writeln!(
                    out,
                    "{pad}Aggregate(by {}; {} aggs)",
                    group_by.join(", "),
                    aggs.len()
                );
                input.render_into(out, depth + 1);
            }
            LogicalPlan::Distinct { input, column } => {
                let _ = writeln!(out, "{pad}Distinct({column})");
                input.render_into(out, depth + 1);
            }
            LogicalPlan::Sort { input, keys, .. } => {
                let keys: Vec<String> = keys
                    .iter()
                    .map(|(c, d)| format!("{c}{}", if *d { " desc" } else { "" }))
                    .collect();
                let _ = writeln!(out, "{pad}Sort(by {})", keys.join(", "));
                input.render_into(out, depth + 1);
            }
            LogicalPlan::Limit { input, count } => {
                let _ = writeln!(out, "{pad}Limit({count})");
                input.render_into(out, depth + 1);
            }
        }
    }
}
