//! SQL frontend for the adaptive GPU query engine.
//!
//! A hand-written pipeline from SQL text to an executable [`engine::Plan`]:
//!
//! ```text
//! SQL text ──lexer──▶ tokens ──parser──▶ [`ast::Query`]
//!      ──binder──▶ [`logical::LogicalPlan`]  (names/types resolved
//!                                             against the [`Catalog`])
//!      ──lower───▶ [`engine::Plan`] + decision notes
//! ```
//!
//! The grammar covers the analytical core the engine runs: `SELECT`
//! (expressions, aggregates, aliases, `DISTINCT`), `FROM` with comma or
//! `JOIN ... ON` equi-joins, `WHERE`, `GROUP BY`, `HAVING`, `ORDER BY`,
//! `LIMIT`, plus `DATE 'YYYY-MM-DD'` literals and dictionary-encoded
//! string comparisons. Everything downstream of [`lower()`] — operator
//! fusion, algorithm heuristics, scheduling, EXPLAIN — is unchanged: a
//! query arriving as SQL and the same plan assembled by hand take exactly
//! the same path through the engine.
//!
//! Errors at every stage are typed [`EngineError`] values carrying a
//! source [`engine::SqlSpan`]; nothing in the pipeline panics on bad
//! input.

#![warn(missing_docs)]

pub mod ast;
pub mod binder;
pub mod lexer;
pub mod logical;
pub mod lower;
pub mod parser;

pub use ast::Query;
pub use binder::bind;
pub use logical::LogicalPlan;
pub use lower::{lower, Lowered};
pub use parser::parse;

use engine::{Catalog, EngineError};

/// Parse, bind and lower `sql` against `catalog` in one call.
///
/// Returns the executable plan plus the lowering's composite-key decision
/// notes (one line per multi-column GROUP BY / ORDER BY rewrite).
pub fn plan_sql(sql: &str, catalog: &Catalog) -> Result<Lowered, EngineError> {
    let query = parse(sql)?;
    let logical = bind(&query, catalog)?;
    lower(&logical, catalog)
}

/// Normalized shape fingerprint of a SQL text: FNV-1a 64 over the lexed
/// token stream. The lexer already normalizes everything that should not
/// distinguish two queries — whitespace, line comments, and keyword case
/// all vanish, while identifier spelling and literal values survive (the
/// catalog is case-sensitive and different constants are different
/// plans). Textual variants of one query therefore share a
/// [`engine::PlanCache`] entry without being re-planned; pass this to
/// [`engine::PlanCache::execute_keyed`].
pub fn fingerprint(sql: &str) -> Result<u64, EngineError> {
    let tokens = lexer::lex(sql)?;
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for token in &tokens {
        // Hash the token's debug form (kind + payload), never its span:
        // source positions are exactly the formatting noise the
        // fingerprint exists to erase.
        for b in format!("{:?}\u{0}", token.tok).bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    Ok(h)
}

#[cfg(test)]
mod tests {
    use super::fingerprint;

    #[test]
    fn formatting_noise_does_not_change_the_fingerprint() {
        let canonical = fingerprint("SELECT a FROM t WHERE a >= 10").unwrap();
        for variant in [
            "select a from t where a >= 10",
            "SELECT a\n  FROM t -- push the filter\n  WHERE a >= 10",
            "  SELECT   a FROM t WHERE a >= 10  ",
        ] {
            assert_eq!(fingerprint(variant).unwrap(), canonical, "{variant:?}");
        }
    }

    #[test]
    fn semantic_differences_change_the_fingerprint() {
        let base = fingerprint("SELECT a FROM t WHERE a >= 10").unwrap();
        for variant in [
            "SELECT a FROM t WHERE a >= 11", // different constant
            "SELECT b FROM t WHERE a >= 10", // different column
            "SELECT A FROM t WHERE a >= 10", // identifiers are case-sensitive
            "SELECT a FROM t WHERE a > 10",  // different operator
        ] {
            assert_ne!(fingerprint(variant).unwrap(), base, "{variant:?}");
        }
    }

    #[test]
    fn token_boundaries_are_not_ambiguous() {
        // Adjacent tokens must not concatenate into the same byte stream.
        assert_ne!(
            fingerprint("SELECT ab FROM t").unwrap(),
            fingerprint("SELECT a FROM t").unwrap()
        );
    }
}
