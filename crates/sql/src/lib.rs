//! SQL frontend for the adaptive GPU query engine.
//!
//! A hand-written pipeline from SQL text to an executable [`engine::Plan`]:
//!
//! ```text
//! SQL text ──lexer──▶ tokens ──parser──▶ [`ast::Query`]
//!      ──binder──▶ [`logical::LogicalPlan`]  (names/types resolved
//!                                             against the [`Catalog`])
//!      ──lower───▶ [`engine::Plan`] + decision notes
//! ```
//!
//! The grammar covers the analytical core the engine runs: `SELECT`
//! (expressions, aggregates, aliases, `DISTINCT`), `FROM` with comma or
//! `JOIN ... ON` equi-joins, `WHERE`, `GROUP BY`, `HAVING`, `ORDER BY`,
//! `LIMIT`, plus `DATE 'YYYY-MM-DD'` literals and dictionary-encoded
//! string comparisons. Everything downstream of [`lower()`] — operator
//! fusion, algorithm heuristics, scheduling, EXPLAIN — is unchanged: a
//! query arriving as SQL and the same plan assembled by hand take exactly
//! the same path through the engine.
//!
//! Errors at every stage are typed [`EngineError`] values carrying a
//! source [`engine::SqlSpan`]; nothing in the pipeline panics on bad
//! input.

#![warn(missing_docs)]

pub mod ast;
pub mod binder;
pub mod lexer;
pub mod logical;
pub mod lower;
pub mod parser;

pub use ast::Query;
pub use binder::bind;
pub use logical::LogicalPlan;
pub use lower::{lower, Lowered};
pub use parser::parse;

use engine::{Catalog, EngineError};

/// Parse, bind and lower `sql` against `catalog` in one call.
///
/// Returns the executable plan plus the lowering's composite-key decision
/// notes (one line per multi-column GROUP BY / ORDER BY rewrite).
pub fn plan_sql(sql: &str, catalog: &Catalog) -> Result<Lowered, EngineError> {
    let query = parse(sql)?;
    let logical = bind(&query, catalog)?;
    lower(&logical, catalog)
}
