//! Global hash-table aggregation: the baseline grouped aggregation, one
//! atomic update per row per aggregate column into a table in device memory.
//!
//! Strong when the group count is small (the table is L2-resident) but
//! degrades on large group cardinalities (random misses) and on heavy key
//! skew (atomic serialization on the hottest group) — the same two effects
//! that shape the non-partitioned hash *join*.

use crate::{AggFn, GroupByAlgorithm, GroupByConfig, GroupByOutput, GroupByStats};
use columnar::{Column, ColumnElement, Relation};
use primitives::{GLOBAL_HASH_WARP_INSTR, STREAM_WARP_INSTR};
use sim::{Device, DeviceBuffer, PhaseTimes};

#[inline]
fn slot_of(key: u64, mask: usize) -> usize {
    (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize & mask
}

pub(crate) fn dispatch_key_column<R>(
    col: &Column,
    f32: impl FnOnce(&DeviceBuffer<i32>) -> R,
    f64_: impl FnOnce(&DeviceBuffer<i64>) -> R,
) -> R {
    match col {
        Column::I32(b) => f32(b),
        Column::I64(b) => f64_(b),
    }
}

/// Global hash aggregation (see module docs).
pub fn hash_groupby(
    dev: &Device,
    input: &Relation,
    aggs: &[AggFn],
    config: &GroupByConfig,
) -> GroupByOutput {
    fn typed<K: ColumnElement>(
        keys: &DeviceBuffer<K>,
        dev: &Device,
        input: &Relation,
        aggs: &[AggFn],
        config: &GroupByConfig,
    ) -> GroupByOutput {
        dev.reset_peak_mem();
        let mut phases = PhaseTimes::default();
        let n = keys.len();

        // Real GPU implementations size the table for the worst case (every
        // row its own group) unless told otherwise.
        let cap = config.expected_groups.unwrap_or(n).max(1);
        let slots = (cap * 2).next_power_of_two();
        let mask = slots - 1;
        let table_keys = dev.alloc::<u64>(slots, "hash_gb.keys");
        let mut occupied: Vec<u32> = vec![u32::MAX; slots]; // group index per slot
        let mut group_keys: Vec<K> = Vec::new();
        let mut group_counts: Vec<u64> = Vec::new();
        let mut row_group = dev.alloc::<u32>(n, "hash_gb.row_group");

        // Group finding: one pass assigning each row its group id, chasing
        // random table slots.
        let t0 = dev.elapsed();
        {
            let mut touched: Vec<u64> = Vec::with_capacity(n);
            for i in 0..n {
                let k = keys[i].to_radix();
                let mut s = slot_of(k, mask);
                let g = loop {
                    touched.push(table_keys.addr_of(s));
                    match occupied[s] {
                        u32::MAX => {
                            let g = group_keys.len() as u32;
                            occupied[s] = g;
                            group_keys.push(keys[i]);
                            group_counts.push(0);
                            break g;
                        }
                        g if group_keys[g as usize] == keys[i] => break g,
                        _ => s = (s + 1) & mask,
                    }
                };
                group_counts[g as usize] += 1;
                row_group[i] = g;
            }
            dev.kernel("hash_gb.build")
                .items(n as u64, GLOBAL_HASH_WARP_INSTR)
                .seq_read_bytes(n as u64 * K::SIZE)
                .warp_loads(12, touched)
                .seq_write_bytes(n as u64 * 4)
                .launch();
        }
        phases.match_find = crate::phase_mark(dev, "match_find", t0);
        let groups = group_keys.len();
        let hottest = group_counts.iter().copied().max().unwrap_or(0);

        // Aggregation: one pass per column. When the group set fits in
        // shared memory, thread blocks pre-aggregate into private tables and
        // merge once per block at the end — the standard privatization that
        // keeps low-cardinality aggregation off the global atomic units.
        // Otherwise every row's update lands at a random global accumulator
        // (atomics, contended on the hottest group).
        let privatized = (groups as u64) <= dev.config().shared_mem_tuples(16);
        let blocks = (dev.config().sms * 4) as u64;
        let t0 = dev.elapsed();
        let mut aggregates = Vec::with_capacity(aggs.len());
        for (j, agg) in aggs.iter().enumerate() {
            let col = input.payload(j);
            let accs = dev.alloc::<i64>(groups, "hash_gb.accs");
            let mut accs = accs;
            accs.as_mut_slice().fill(agg.identity());
            for i in 0..n {
                let g = row_group[i] as usize;
                accs[g] = agg.fold(accs[g], col.value(i));
            }
            if privatized {
                dev.kernel("hash_gb.aggregate.privatized")
                    .items(n as u64, STREAM_WARP_INSTR)
                    .seq_read_bytes(n as u64 * (col.dtype().size() + 4))
                    // Cross-block merge: one partial table per block.
                    .seq_write_bytes(blocks * groups as u64 * 8)
                    .atomics(blocks * groups as u64, blocks)
                    .launch();
            } else {
                let accs_addrs: Vec<u64> = (0..n)
                    .map(|i| accs.addr_of(row_group[i] as usize))
                    .collect();
                dev.kernel("hash_gb.aggregate.global")
                    .items(n as u64, STREAM_WARP_INSTR)
                    .seq_read_bytes(n as u64 * (col.dtype().size() + 4))
                    .warp_stores(8, accs_addrs)
                    .atomics(n as u64, hottest)
                    .launch();
            }
            aggregates.push(Column::from_i64(dev, accs.to_vec(), "hash_gb.out"));
        }
        // Compact the table into the output key column (streaming scan of
        // the slots).
        dev.kernel("hash_gb.compact")
            .items(slots as u64, STREAM_WARP_INSTR)
            .seq_read_bytes(slots as u64 * 12)
            .seq_write_bytes(groups as u64 * K::SIZE)
            .launch();
        phases.materialize = crate::phase_mark(dev, "materialize", t0);
        drop((table_keys, row_group));

        GroupByOutput {
            keys: K::wrap(dev.upload(group_keys, "hash_gb.group_keys")),
            aggregates,
            stats: GroupByStats::new(
                GroupByAlgorithm::HashGlobal,
                phases,
                groups,
                dev.mem_report().peak_bytes,
            ),
        }
    }
    dispatch_key_column(
        input.key(),
        |k| typed(k, dev, input, aggs, config),
        |k| typed(k, dev, input, aggs, config),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::group_by_oracle;
    use columnar::Column;
    use sim::Device;

    fn check(dev: &Device, input: &Relation, aggs: &[AggFn]) {
        let out = hash_groupby(dev, input, aggs, &GroupByConfig::default());
        assert_eq!(out.rows_sorted(), group_by_oracle(input, aggs));
    }

    #[test]
    fn matches_oracle() {
        let dev = Device::a100();
        let keys: Vec<i32> = (0..5000).map(|i| (i * 7) % 97).collect();
        let input = Relation::new(
            "T",
            Column::from_i32(&dev, keys.clone(), "k"),
            vec![
                Column::from_i32(&dev, keys.iter().map(|&k| k * 3).collect(), "v"),
                Column::from_i64(&dev, keys.iter().map(|&k| -(k as i64)).collect(), "w"),
            ],
        );
        check(&dev, &input, &[AggFn::Sum, AggFn::Min]);
        check(&dev, &input, &[AggFn::Count, AggFn::Max]);
    }

    #[test]
    fn i64_keys_and_negative_values() {
        let dev = Device::a100();
        let keys: Vec<i64> = (0..1000)
            .map(|i| ((i % 13) - 6) as i64 * 1_000_000_000)
            .collect();
        let input = Relation::new(
            "T",
            Column::from_i64(&dev, keys.clone(), "k"),
            vec![Column::from_i32(
                &dev,
                (0..1000).map(|i| i - 500).collect(),
                "v",
            )],
        );
        check(&dev, &input, &[AggFn::Sum]);
    }

    #[test]
    fn empty_input() {
        let dev = Device::a100();
        let input = Relation::new("T", Column::from_i32(&dev, vec![], "k"), vec![]);
        let out = hash_groupby(&dev, &input, &[], &GroupByConfig::default());
        assert!(out.is_empty());
    }

    #[test]
    fn all_rows_one_group() {
        let dev = Device::a100();
        let input = Relation::new(
            "T",
            Column::from_i32(&dev, vec![42; 1000], "k"),
            vec![Column::from_i32(&dev, (0..1000).collect(), "v")],
        );
        let out = hash_groupby(&dev, &input, &[AggFn::Sum], &GroupByConfig::default());
        assert_eq!(out.len(), 1);
        assert_eq!(out.rows_sorted(), vec![vec![42, 499_500]]);
    }

    #[test]
    fn skewed_keys_pay_atomic_contention() {
        // Group domains beyond the shared-memory capacity force the global
        // atomic path, where a hot group serializes. (Small domains take the
        // privatized path and are immune — by design.)
        let dev = Device::a100();
        let n = 1 << 17;
        let uniform: Vec<i32> = (0..n).map(|i| i % 65536).collect();
        let skewed: Vec<i32> = (0..n)
            .map(|i| if i % 10 == 0 { i % 65536 } else { 1 })
            .collect();
        let mk = |keys: Vec<i32>| {
            Relation::new(
                "T",
                Column::from_i32(&dev, keys.clone(), "k"),
                vec![Column::from_i32(&dev, keys, "v")],
            )
        };
        let cfg = GroupByConfig::default();
        let t_uniform = hash_groupby(&dev, &mk(uniform), &[AggFn::Sum], &cfg)
            .stats
            .phases
            .total();
        let t_skewed = hash_groupby(&dev, &mk(skewed), &[AggFn::Sum], &cfg)
            .stats
            .phases
            .total();
        assert!(
            t_skewed.secs() > 1.5 * t_uniform.secs(),
            "skewed {t_skewed} vs uniform {t_uniform}"
        );
    }
}
