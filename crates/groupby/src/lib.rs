//! # groupby — grouped aggregations on the simulated GPU
//!
//! The grouped-aggregation half of *Efficiently Processing Joins and Grouped
//! Aggregations on GPUs*: the same three-phase framework as the joins
//! (transform → group finding → per-column aggregation/materialization) with
//! the same two transformation strategies and the same GFUR/GFTR choice:
//!
//! | variant | transform | per-column aggregation |
//! |---|---|---|
//! | [`hash::hash_groupby`] | none | atomic updates into a global table (random access) |
//! | [`sort::sort_groupby`] GFTR | sort `(key, col_i)` per column | streaming segmented reduce |
//! | [`sort::sort_groupby`] GFUR | sort `(key, ID)` once | unclustered gather, then segmented reduce |
//! | [`partitioned::partitioned_groupby`] GFTR | stable radix partition per column | shared-memory tables, streaming |
//! | [`partitioned::partitioned_groupby`] GFUR | partition `(key, ID)` once | unclustered gather, shared-memory tables |
//!
//! The trade-off mirrors the join study: with many aggregated columns and
//! large inputs, transforming every column (GFTR) converts the random
//! accesses of aggregation into sequential ones; with few groups, the global
//! hash table is L2-resident and hard to beat (but suffers atomic contention
//! on heavily skewed keys).

pub mod hash;
pub mod oracle;
pub mod partitioned;
pub mod sort;

use columnar::{Column, Relation};
use serde::{Deserialize, Serialize};
use sim::{Device, OpStats, PhaseTimes, SimTime};

/// Close a paper-phase measurement started at `t0`: records the interval
/// as a phase span on the device trace (no-op when tracing is off) and
/// returns its duration — exactly the value the caller stores in
/// [`PhaseTimes`], so phase-span sums reproduce the reported phases.
pub(crate) fn phase_mark(dev: &Device, phase: &'static str, t0: SimTime) -> SimTime {
    let t1 = dev.elapsed();
    dev.trace_span(sim::SpanCat::Phase, phase, t0, t1);
    t1 - t0
}

/// Aggregate function applied to one payload column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AggFn {
    /// Sum of values (widened to `i64`).
    Sum,
    /// Minimum value.
    Min,
    /// Maximum value.
    Max,
    /// Number of rows in the group (the payload column is only used for its
    /// length).
    Count,
}

impl AggFn {
    /// Neutral accumulator start value.
    pub fn identity(self) -> i64 {
        match self {
            AggFn::Sum | AggFn::Count => 0,
            AggFn::Min => i64::MAX,
            AggFn::Max => i64::MIN,
        }
    }

    /// Fold one value into an accumulator.
    #[inline]
    pub fn fold(self, acc: i64, v: i64) -> i64 {
        match self {
            AggFn::Sum => acc + v,
            AggFn::Min => acc.min(v),
            AggFn::Max => acc.max(v),
            AggFn::Count => acc + 1,
        }
    }

    /// Merge two partial accumulators (used by per-block pre-aggregation).
    #[inline]
    pub fn merge(self, a: i64, b: i64) -> i64 {
        match self {
            AggFn::Sum | AggFn::Count => a + b,
            AggFn::Min => a.min(b),
            AggFn::Max => a.max(b),
        }
    }
}

/// Which grouped-aggregation implementation to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GroupByAlgorithm {
    /// Global hash table with atomic updates.
    HashGlobal,
    /// Sort-based, GFTR materialization (sort every column with the keys).
    SortGftr,
    /// Sort-based, GFUR materialization (sort IDs, gather unclustered).
    SortGfur,
    /// Radix-partitioned, GFTR materialization.
    PartitionedGftr,
    /// Radix-partitioned, GFUR materialization.
    PartitionedGfur,
}

impl GroupByAlgorithm {
    /// Display name for benchmark tables.
    pub fn name(self) -> &'static str {
        match self {
            GroupByAlgorithm::HashGlobal => "HASH",
            GroupByAlgorithm::SortGftr => "SORT-OM",
            GroupByAlgorithm::SortGfur => "SORT-UM",
            GroupByAlgorithm::PartitionedGftr => "PART-OM",
            GroupByAlgorithm::PartitionedGfur => "PART-UM",
        }
    }

    /// The materialization strategy label: `"GFTR"` when every aggregated
    /// column is transformed with the keys, `"GFUR"` when only (key, ID)
    /// pairs are transformed and values are gathered unclustered,
    /// `"in-place"` for the global hash table (no transformation at all).
    pub fn materialization(self) -> &'static str {
        match self {
            GroupByAlgorithm::HashGlobal => "in-place",
            GroupByAlgorithm::SortGftr | GroupByAlgorithm::PartitionedGftr => "GFTR",
            GroupByAlgorithm::SortGfur | GroupByAlgorithm::PartitionedGfur => "GFUR",
        }
    }

    /// Every implementation, for sweep benchmarks.
    pub const ALL: [GroupByAlgorithm; 5] = [
        GroupByAlgorithm::HashGlobal,
        GroupByAlgorithm::SortGftr,
        GroupByAlgorithm::SortGfur,
        GroupByAlgorithm::PartitionedGftr,
        GroupByAlgorithm::PartitionedGfur,
    ];
}

impl std::fmt::Display for GroupByAlgorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Tuning knobs for the grouped aggregations.
#[derive(Debug, Clone, Default)]
pub struct GroupByConfig {
    /// Radix bits for the partitioned variant; `None` auto-sizes.
    pub radix_bits: Option<u32>,
    /// Expected number of distinct groups, if known; used to size the global
    /// hash table (`None` falls back to the row count — the conservative
    /// allocation real GPU implementations make).
    pub expected_groups: Option<usize>,
}

/// Execution report for one grouped aggregation: the algorithm that ran
/// plus the shared per-operator report ([`sim::OpStats`]). Dereferences to
/// [`OpStats`], so `stats.phases` / `stats.peak_mem_bytes` reads keep
/// working; the group count is `stats.groups()` (stored as
/// [`OpStats::rows`] — groups *are* this operator's output cardinality).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GroupByStats {
    /// Which implementation produced this.
    pub algorithm: GroupByAlgorithm,
    /// The shared per-operator report.
    pub op: OpStats,
}

impl GroupByStats {
    /// Assemble from the measurements every implementation takes; the
    /// hardware-counter delta is filled in centrally by [`run_group_by`].
    pub fn new(
        algorithm: GroupByAlgorithm,
        phases: PhaseTimes,
        groups: usize,
        peak_mem_bytes: u64,
    ) -> Self {
        GroupByStats {
            algorithm,
            op: OpStats::new(phases, groups, peak_mem_bytes),
        }
    }

    /// Number of output groups.
    pub fn groups(&self) -> usize {
        self.op.rows
    }
}

impl std::ops::Deref for GroupByStats {
    type Target = OpStats;
    fn deref(&self) -> &OpStats {
        &self.op
    }
}

/// Result of a grouped aggregation: one row per group.
pub struct GroupByOutput {
    /// Distinct group keys (order is implementation-defined).
    pub keys: Column,
    /// One aggregate column per requested [`AggFn`], widened to `i64`.
    pub aggregates: Vec<Column>,
    /// Timing and memory report.
    pub stats: GroupByStats,
}

impl GroupByOutput {
    /// Number of groups.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True when the input had no rows.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Rows as `(key, aggregates...)`, sorted by key — order-insensitive
    /// form for oracle comparison.
    pub fn rows_sorted(&self) -> Vec<Vec<i64>> {
        let mut rows: Vec<Vec<i64>> = (0..self.len())
            .map(|i| {
                let mut row = Vec::with_capacity(1 + self.aggregates.len());
                row.push(self.keys.value(i));
                row.extend(self.aggregates.iter().map(|c| c.value(i)));
                row
            })
            .collect();
        rows.sort_unstable();
        rows
    }
}

/// The aggregation request: `aggs[i]` applies to payload column `i` of the
/// input relation. Panics if the lengths differ.
pub fn run_group_by(
    dev: &Device,
    algorithm: GroupByAlgorithm,
    input: &Relation,
    aggs: &[AggFn],
    config: &GroupByConfig,
) -> GroupByOutput {
    assert_eq!(
        aggs.len(),
        input.num_payloads(),
        "need exactly one aggregate function per payload column"
    );
    let before = dev.counters();
    let t0 = dev.elapsed();
    let mut out = match algorithm {
        GroupByAlgorithm::HashGlobal => hash::hash_groupby(dev, input, aggs, config),
        GroupByAlgorithm::SortGftr => sort::sort_groupby(dev, input, aggs, config, true),
        GroupByAlgorithm::SortGfur => sort::sort_groupby(dev, input, aggs, config, false),
        GroupByAlgorithm::PartitionedGftr => {
            partitioned::partitioned_groupby(dev, input, aggs, config, true)
        }
        GroupByAlgorithm::PartitionedGfur => {
            partitioned::partitioned_groupby(dev, input, aggs, config, false)
        }
    };
    out.stats.op.counters = dev.counters().delta_since(&before).0;
    out.stats.op.query = dev.query_id();
    dev.trace_span(sim::SpanCat::GroupBy, algorithm.name(), t0, dev.elapsed());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggfn_identities_and_folds() {
        assert_eq!(AggFn::Sum.fold(AggFn::Sum.identity(), 5), 5);
        assert_eq!(AggFn::Min.fold(AggFn::Min.identity(), 5), 5);
        assert_eq!(AggFn::Max.fold(AggFn::Max.identity(), -5), -5);
        assert_eq!(AggFn::Count.fold(AggFn::Count.identity(), 123), 1);
        assert_eq!(AggFn::Sum.merge(3, 4), 7);
        assert_eq!(AggFn::Min.merge(3, 4), 3);
        assert_eq!(AggFn::Max.merge(3, 4), 4);
        assert_eq!(AggFn::Count.merge(3, 4), 7);
    }
}
