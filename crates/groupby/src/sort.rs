//! Sort-based grouped aggregation: sort by key, detect group boundaries,
//! reduce each segment.
//!
//! The GFTR variant sorts every aggregate column together with the keys
//! (stable radix sort → identical layouts), turning the per-column reduce
//! into a pure streaming pass. The GFUR variant sorts `(key, ID)` once and
//! fetches values through unclustered gathers — cheaper transform, costlier
//! aggregation, exactly the join study's trade-off.

use crate::hash::dispatch_key_column;
use crate::{AggFn, GroupByAlgorithm, GroupByConfig, GroupByOutput, GroupByStats};
use columnar::{Column, ColumnElement, Relation};
use primitives::{gather_column, run_boundaries, sort_pairs, STREAM_WARP_INSTR};
use sim::{Device, DeviceBuffer, PhaseTimes};

/// Segmented fold of a (already ordered) column: one streaming read, one
/// `|G|`-sized write.
fn segmented_fold(dev: &Device, col: &Column, boundaries: &[u32], agg: AggFn) -> Column {
    let groups = boundaries.len().saturating_sub(1);
    let mut out = Vec::with_capacity(groups);
    for g in 0..groups {
        let mut acc = agg.identity();
        for i in boundaries[g]..boundaries[g + 1] {
            acc = agg.fold(acc, col.value(i as usize));
        }
        out.push(acc);
    }
    dev.kernel("segmented_fold")
        .items(col.len() as u64, STREAM_WARP_INSTR)
        .seq_read_bytes(col.len() as u64 * col.dtype().size())
        .seq_write_bytes(groups as u64 * 8)
        .launch();
    Column::from_i64(dev, out, "sort_gb.agg")
}

/// Sort a payload column with the keys (GFTR helper shared with the join
/// code path shape).
fn sort_col_with_key<K: ColumnElement>(
    dev: &Device,
    keys: &DeviceBuffer<K>,
    col: &Column,
) -> (DeviceBuffer<K>, Column) {
    match col {
        Column::I32(v) => {
            let (k, v) = sort_pairs(dev, keys, v);
            (k, Column::I32(v))
        }
        Column::I64(v) => {
            let (k, v) = sort_pairs(dev, keys, v);
            (k, Column::I64(v))
        }
    }
}

/// Sort-based grouped aggregation; `gftr` selects the materialization
/// pattern (see module docs).
pub fn sort_groupby(
    dev: &Device,
    input: &Relation,
    aggs: &[AggFn],
    _config: &GroupByConfig,
    gftr: bool,
) -> GroupByOutput {
    fn typed<K: ColumnElement>(
        keys: &DeviceBuffer<K>,
        dev: &Device,
        input: &Relation,
        aggs: &[AggFn],
        gftr: bool,
    ) -> GroupByOutput {
        dev.reset_peak_mem();
        let mut phases = PhaseTimes::default();
        let n = keys.len();

        // Transformation: GFTR sorts (key, col_0); GFUR sorts (key, ID).
        let t0 = dev.elapsed();
        let (sorted_keys, mut first_col, sorted_ids) = if gftr && !input.payloads().is_empty() {
            let (k, c) = sort_col_with_key(dev, keys, input.payload(0));
            (k, Some(c), None)
        } else {
            let ids = dev.upload((0..n as u32).collect::<Vec<u32>>(), "sort_gb.ids");
            dev.kernel("iota")
                .items(n as u64, STREAM_WARP_INSTR)
                .seq_write_bytes(n as u64 * 4)
                .launch();
            let (k, v) = sort_pairs(dev, keys, &ids);
            (k, None, Some(v))
        };
        phases.transform = crate::phase_mark(dev, "transform", t0);

        // Group finding: boundary detection over the sorted keys.
        let t0 = dev.elapsed();
        let boundaries = run_boundaries(dev, sorted_keys.as_slice());
        phases.match_find = crate::phase_mark(dev, "match_find", t0);
        let groups = boundaries.len() - 1;

        // Aggregation.
        let t0 = dev.elapsed();
        let mut aggregates = Vec::with_capacity(aggs.len());
        for (j, agg) in aggs.iter().enumerate() {
            let ordered: Column = if gftr {
                if j == 0 {
                    // Already sorted in the transformation phase.
                    first_col
                        .take()
                        .expect("gftr with payloads always sorts col 0")
                } else {
                    sort_col_with_key(dev, keys, input.payload(j)).1
                }
            } else {
                // GFUR: unclustered gather through the sorted IDs.
                let ids = sorted_ids.as_ref().expect("gfur sorted ids");
                gather_column(dev, input.payload(j), ids)
            };
            aggregates.push(segmented_fold(dev, &ordered, &boundaries, *agg));
        }
        // Group keys: one value per segment start (clustered gather).
        let starts = dev.upload(boundaries[..groups].to_vec(), "sort_gb.starts");
        let group_keys = primitives::gather(dev, &sorted_keys, &starts);
        phases.materialize = crate::phase_mark(dev, "materialize", t0);

        GroupByOutput {
            keys: K::wrap(group_keys),
            aggregates,
            stats: GroupByStats::new(
                if gftr {
                    GroupByAlgorithm::SortGftr
                } else {
                    GroupByAlgorithm::SortGfur
                },
                phases,
                groups,
                dev.mem_report().peak_bytes,
            ),
        }
    }
    dispatch_key_column(
        input.key(),
        |k| typed(k, dev, input, aggs, gftr),
        |k| typed(k, dev, input, aggs, gftr),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::group_by_oracle;
    use columnar::Column;
    use sim::Device;

    fn check(dev: &Device, input: &Relation, aggs: &[AggFn]) {
        for gftr in [true, false] {
            let out = sort_groupby(dev, input, aggs, &GroupByConfig::default(), gftr);
            assert_eq!(
                out.rows_sorted(),
                group_by_oracle(input, aggs),
                "gftr={gftr}"
            );
        }
    }

    #[test]
    fn matches_oracle() {
        let dev = Device::a100();
        let keys: Vec<i32> = (0..3000).map(|i| (i * 11) % 113).collect();
        let input = Relation::new(
            "T",
            Column::from_i32(&dev, keys.clone(), "k"),
            vec![
                Column::from_i64(&dev, keys.iter().map(|&k| k as i64 * 5).collect(), "v"),
                Column::from_i32(&dev, keys.iter().map(|&k| 200 - k).collect(), "w"),
            ],
        );
        check(&dev, &input, &[AggFn::Min, AggFn::Sum]);
        check(&dev, &input, &[AggFn::Max, AggFn::Count]);
    }

    #[test]
    fn single_group_and_all_distinct() {
        let dev = Device::a100();
        let one = Relation::new(
            "T",
            Column::from_i32(&dev, vec![7; 100], "k"),
            vec![Column::from_i32(&dev, (0..100).collect(), "v")],
        );
        check(&dev, &one, &[AggFn::Sum]);
        let distinct = Relation::new(
            "T",
            Column::from_i32(&dev, (0..100).rev().collect(), "k"),
            vec![Column::from_i32(&dev, (0..100).collect(), "v")],
        );
        check(&dev, &distinct, &[AggFn::Max]);
    }

    #[test]
    fn empty_and_payloadless() {
        let dev = Device::a100();
        let empty = Relation::new("T", Column::from_i32(&dev, vec![], "k"), vec![]);
        check(&dev, &empty, &[]);
        // Payload-less distinct: grouping only.
        let distinct = Relation::new("T", Column::from_i32(&dev, vec![3, 1, 3, 2], "k"), vec![]);
        let out = sort_groupby(&dev, &distinct, &[], &GroupByConfig::default(), true);
        assert_eq!(out.rows_sorted(), vec![vec![1], vec![2], vec![3]]);
    }

    #[test]
    fn gftr_has_cheaper_aggregation_for_wide_inputs() {
        // Shrunken L2 so the unclustered gathers of GFUR pay DRAM latency.
        let mut cfg = sim::DeviceConfig::rtx3090();
        cfg.l2_bytes = 1 << 20;
        let dev = Device::new(cfg);
        let n = 1 << 21;
        let mut keys: Vec<i32> = (0..n).map(|i| i % (1 << 18)).collect();
        // Shuffle so sorted order scrambles the IDs.
        let mut state = 0xD1B54A32D192ED03u64;
        for i in (1..keys.len()).rev() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            keys.swap(i, (state % (i as u64 + 1)) as usize);
        }
        let input = Relation::new(
            "T",
            Column::from_i32(&dev, keys.clone(), "k"),
            vec![
                Column::from_i32(&dev, keys.iter().map(|&k| k + 1).collect(), "a"),
                Column::from_i32(&dev, keys.iter().map(|&k| k + 2).collect(), "b"),
                Column::from_i32(&dev, keys.iter().map(|&k| k + 3).collect(), "c"),
                Column::from_i32(&dev, keys.iter().map(|&k| k + 4).collect(), "d"),
            ],
        );
        let aggs = [AggFn::Sum, AggFn::Min, AggFn::Max, AggFn::Sum];
        let cfg = GroupByConfig::default();
        let om = sort_groupby(&dev, &input, &aggs, &cfg, true);
        let um = sort_groupby(&dev, &input, &aggs, &cfg, false);
        assert_eq!(om.rows_sorted(), um.rows_sorted());
        assert!(
            om.stats.phases.total() < um.stats.phases.total(),
            "GFTR {} should beat GFUR {} on 4 aggregate columns",
            om.stats.phases.total(),
            um.stats.phases.total()
        );
    }
}
