//! Host-side reference grouped aggregation for tests.

use crate::AggFn;
use columnar::Relation;
use std::collections::HashMap;

/// Naive grouped aggregation: returns `(key, aggregates...)` rows sorted by
/// key, widened to `i64`.
pub fn group_by_oracle(input: &Relation, aggs: &[AggFn]) -> Vec<Vec<i64>> {
    assert_eq!(aggs.len(), input.num_payloads());
    let mut table: HashMap<i64, Vec<i64>> = HashMap::new();
    for i in 0..input.len() {
        let k = input.key().value(i);
        let accs = table
            .entry(k)
            .or_insert_with(|| aggs.iter().map(|a| a.identity()).collect());
        for (j, agg) in aggs.iter().enumerate() {
            accs[j] = agg.fold(accs[j], input.payload(j).value(i));
        }
    }
    let mut rows: Vec<Vec<i64>> = table
        .into_iter()
        .map(|(k, accs)| {
            let mut row = Vec::with_capacity(1 + accs.len());
            row.push(k);
            row.extend(accs);
            row
        })
        .collect();
    rows.sort_unstable();
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use columnar::Column;
    use sim::Device;

    #[test]
    fn oracle_groups_and_aggregates() {
        let dev = Device::a100();
        let input = Relation::new(
            "T",
            Column::from_i32(&dev, vec![2, 1, 2, 1, 2], "k"),
            vec![
                Column::from_i32(&dev, vec![10, 20, 30, 40, 50], "v"),
                Column::from_i64(&dev, vec![1, 2, 3, 4, 5], "w"),
            ],
        );
        let rows = group_by_oracle(&input, &[AggFn::Sum, AggFn::Max]);
        assert_eq!(rows, vec![vec![1, 60, 4], vec![2, 90, 5]]);
    }
}
