//! Radix-partitioned grouped aggregation — the PHJ-OM analog: stable radix
//! partition by the group key so every partition's groups fit a
//! shared-memory table, then aggregate partition-locally.
//!
//! GFTR partitions every aggregate column with the keys (stability makes the
//! layouts identical) and aggregates each with a streaming pass; GFUR
//! partitions `(key, ID)` once and fetches values with unclustered gathers.

use crate::hash::dispatch_key_column;
use crate::{AggFn, GroupByAlgorithm, GroupByConfig, GroupByOutput, GroupByStats};
use columnar::{Column, ColumnElement, Relation};
use primitives::{gather_column, radix_partition, BUILD_WARP_INSTR, STREAM_WARP_INSTR};
use sim::{Device, DeviceBuffer, PhaseTimes};
use std::collections::HashMap;

/// Partition one payload column with the keys.
fn partition_col_with_key<K: ColumnElement>(
    dev: &Device,
    keys: &DeviceBuffer<K>,
    col: &Column,
    bits: u32,
) -> (DeviceBuffer<K>, Column, Vec<u32>) {
    match col {
        Column::I32(v) => {
            let p = radix_partition(dev, keys, v, bits);
            (p.keys, Column::I32(p.vals), p.offsets)
        }
        Column::I64(v) => {
            let p = radix_partition(dev, keys, v, bits);
            (p.keys, Column::I64(p.vals), p.offsets)
        }
    }
}

fn choose_bits(dev: &Device, n: usize, key_bytes: u64, config: &GroupByConfig) -> u32 {
    if let Some(b) = config.radix_bits {
        return b;
    }
    let target = dev.config().shared_mem_tuples(key_bytes + 8).max(64);
    let parts = (n as u64).div_ceil(target).max(1);
    (64 - (parts - 1).leading_zeros()).clamp(1, 16)
}

/// Radix-partitioned grouped aggregation; `gftr` selects the pattern.
pub fn partitioned_groupby(
    dev: &Device,
    input: &Relation,
    aggs: &[AggFn],
    config: &GroupByConfig,
    gftr: bool,
) -> GroupByOutput {
    fn typed<K: ColumnElement>(
        keys: &DeviceBuffer<K>,
        dev: &Device,
        input: &Relation,
        aggs: &[AggFn],
        config: &GroupByConfig,
        gftr: bool,
    ) -> GroupByOutput {
        dev.reset_peak_mem();
        let mut phases = PhaseTimes::default();
        let n = keys.len();
        let bits = choose_bits(dev, n.max(1), K::SIZE, config);

        // Transformation: partition keys with col_0 (GFTR) or with IDs
        // (GFUR). Offsets come from the partitioner's histogram + scan.
        let t0 = dev.elapsed();
        let (part_keys, mut first_col, part_ids, _offsets) = if gftr && !input.payloads().is_empty()
        {
            let (k, c, off) = partition_col_with_key(dev, keys, input.payload(0), bits);
            (k, Some(c), None, off)
        } else {
            let ids = dev.upload((0..n as u32).collect::<Vec<u32>>(), "part_gb.ids");
            dev.kernel("iota")
                .items(n as u64, STREAM_WARP_INSTR)
                .seq_write_bytes(n as u64 * 4)
                .launch();
            let p = radix_partition(dev, keys, &ids, bits);
            (p.keys, None, Some(p.vals), p.offsets)
        };
        phases.transform = crate::phase_mark(dev, "transform", t0);

        // Group finding: per-partition shared-memory tables assign each row
        // a global group id (one streaming pass writing the group-id column
        // and the distinct keys).
        let t0 = dev.elapsed();
        let mut group_keys: Vec<K> = Vec::new();
        let mut row_group: Vec<u32> = Vec::with_capacity(n);
        {
            // Partitions are contiguous; a single scan suffices because the
            // partition boundary only resets the (simulated) shared table.
            let mut local: HashMap<u64, u32> = HashMap::new();
            let mask = (1u64 << bits) - 1;
            let mut current_part = u64::MAX;
            for pk in part_keys.iter() {
                let part = pk.to_radix() & mask;
                if part != current_part {
                    local.clear();
                    current_part = part;
                }
                let g = *local.entry(pk.to_radix()).or_insert_with(|| {
                    let g = group_keys.len() as u32;
                    group_keys.push(*pk);
                    g
                });
                row_group.push(g);
            }
            dev.kernel("part_gb.group_find")
                .items(n as u64, BUILD_WARP_INSTR)
                .seq_read_bytes(n as u64 * K::SIZE)
                .seq_write_bytes(n as u64 * 4 + group_keys.len() as u64 * K::SIZE)
                .launch();
        }
        let row_group = dev.upload(row_group, "part_gb.row_group");
        phases.match_find = crate::phase_mark(dev, "match_find", t0);
        let groups = group_keys.len();

        // Aggregation: per column. GFTR re-partitions the column (identical
        // layout by stability) and streams; GFUR gathers unclustered.
        let t0 = dev.elapsed();
        let mut aggregates = Vec::with_capacity(aggs.len());
        for (j, agg) in aggs.iter().enumerate() {
            let ordered: Column = if gftr {
                if j == 0 {
                    first_col
                        .take()
                        .expect("gftr with payloads partitions col 0")
                } else {
                    partition_col_with_key(dev, keys, input.payload(j), bits).1
                }
            } else {
                let ids = part_ids.as_ref().expect("gfur partitioned ids");
                gather_column(dev, input.payload(j), ids)
            };
            // Streaming fold into shared-memory accumulators (group ids are
            // partition-local on hardware; charged as a streaming pass).
            let mut accs = vec![agg.identity(); groups];
            for i in 0..ordered.len() {
                let g = row_group[i] as usize;
                accs[g] = agg.fold(accs[g], ordered.value(i));
            }
            dev.kernel("part_gb.aggregate")
                .items(n as u64, STREAM_WARP_INSTR)
                .seq_read_bytes(n as u64 * (ordered.dtype().size() + 4))
                .seq_write_bytes(groups as u64 * 8)
                .launch();
            aggregates.push(Column::from_i64(dev, accs, "part_gb.out"));
        }
        phases.materialize = crate::phase_mark(dev, "materialize", t0);

        GroupByOutput {
            keys: K::wrap(dev.upload(group_keys, "part_gb.group_keys")),
            aggregates,
            stats: GroupByStats::new(
                if gftr {
                    GroupByAlgorithm::PartitionedGftr
                } else {
                    GroupByAlgorithm::PartitionedGfur
                },
                phases,
                groups,
                dev.mem_report().peak_bytes,
            ),
        }
    }
    dispatch_key_column(
        input.key(),
        |k| typed(k, dev, input, aggs, config, gftr),
        |k| typed(k, dev, input, aggs, config, gftr),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::group_by_oracle;
    use columnar::Column;
    use sim::Device;

    fn check(dev: &Device, input: &Relation, aggs: &[AggFn], config: &GroupByConfig) {
        for gftr in [true, false] {
            let out = partitioned_groupby(dev, input, aggs, config, gftr);
            assert_eq!(
                out.rows_sorted(),
                group_by_oracle(input, aggs),
                "gftr={gftr}"
            );
        }
    }

    #[test]
    fn matches_oracle() {
        let dev = Device::a100();
        let keys: Vec<i32> = (0..4000).map(|i| (i * 17) % 257).collect();
        let input = Relation::new(
            "T",
            Column::from_i32(&dev, keys.clone(), "k"),
            vec![
                Column::from_i32(&dev, keys.iter().map(|&k| k * 2).collect(), "v"),
                Column::from_i64(&dev, keys.iter().map(|&k| 1000 - k as i64).collect(), "w"),
            ],
        );
        check(
            &dev,
            &input,
            &[AggFn::Sum, AggFn::Min],
            &GroupByConfig::default(),
        );
    }

    #[test]
    fn explicit_bits_partition_groups_correctly() {
        let dev = Device::a100();
        let keys: Vec<i32> = (0..2000).map(|i| (i % 700) - 350).collect();
        let input = Relation::new(
            "T",
            Column::from_i32(&dev, keys.clone(), "k"),
            vec![Column::from_i32(
                &dev,
                keys.iter().map(|&k| k.abs()).collect(),
                "v",
            )],
        );
        for bits in [1, 5, 9] {
            check(
                &dev,
                &input,
                &[AggFn::Max],
                &GroupByConfig {
                    radix_bits: Some(bits),
                    ..GroupByConfig::default()
                },
            );
        }
    }

    #[test]
    fn i64_keys() {
        let dev = Device::a100();
        let keys: Vec<i64> = (0..1500).map(|i| ((i % 37) as i64) << 33).collect();
        let input = Relation::new(
            "T",
            Column::from_i64(&dev, keys.clone(), "k"),
            vec![Column::from_i32(&dev, (0..1500).collect(), "v")],
        );
        check(&dev, &input, &[AggFn::Sum], &GroupByConfig::default());
    }

    #[test]
    fn empty_input() {
        let dev = Device::a100();
        let input = Relation::new("T", Column::from_i32(&dev, vec![], "k"), vec![]);
        let out = partitioned_groupby(&dev, &input, &[], &GroupByConfig::default(), true);
        assert!(out.is_empty());
    }

    #[test]
    fn partitioning_is_skew_robust_compared_to_hash() {
        // The radix partitioner gives every thread equal work regardless of
        // the key distribution; the global hash table serializes on the hot
        // group. (Figure 14's story carried over to aggregation.)
        let dev = Device::a100();
        let n = 1 << 17;
        // Wide group domain: too many groups for shared-memory
        // privatization, so the hash table pays hot-group atomics.
        let skewed: Vec<i32> = (0..n)
            .map(|i| if i % 10 == 0 { i % 65536 } else { 1 })
            .collect();
        let input = Relation::new(
            "T",
            Column::from_i32(&dev, skewed.clone(), "k"),
            vec![Column::from_i32(&dev, skewed, "v")],
        );
        let cfg = GroupByConfig::default();
        let part = partitioned_groupby(&dev, &input, &[AggFn::Sum], &cfg, true);
        let hash = crate::hash::hash_groupby(&dev, &input, &[AggFn::Sum], &cfg);
        assert_eq!(part.rows_sorted(), hash.rows_sorted());
        assert!(
            part.stats.phases.total() < hash.stats.phases.total(),
            "partitioned {} should beat contended hash {}",
            part.stats.phases.total(),
            hash.stats.phases.total()
        );
    }
}
