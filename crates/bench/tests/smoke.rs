//! Smoke tests: every experiment must run end to end at a tiny scale and
//! produce rows and findings. Guards the harness against bit-rot — a
//! broken experiment fails here long before anyone re-runs the full
//! evaluation.

use bench::{exp, Args, Report};

fn tiny() -> Args {
    let mut args = Args::default();
    args.scale_log2 = 14;
    args.reps = 1;
    args
}

fn assert_ran(report: Report) {
    assert!(
        !report.rows.is_empty(),
        "{}: no result rows",
        report.experiment
    );
}

macro_rules! smoke {
    ($name:ident, $f:path) => {
        #[test]
        fn $name() {
            assert_ran($f(&tiny()));
        }
    };
}

smoke!(fig01, exp::fig01::run);
smoke!(table04, exp::table04::run);
smoke!(fig07, exp::fig07::run);
smoke!(fig08, exp::fig08::run);
smoke!(fig09, exp::fig09::run);
smoke!(fig10, exp::fig10::run);
smoke!(fig11, exp::fig11::run);
smoke!(fig12, exp::fig12::run);
smoke!(fig13, exp::fig13::run);
smoke!(fig14, exp::fig14::run);
smoke!(fig15, exp::fig15::run);
smoke!(table05, exp::table05::run);
smoke!(fig16, exp::fig16::run);
smoke!(fig17, exp::fig17::run);
smoke!(fig18, exp::fig18::run);
smoke!(table12, exp::table12::run);
smoke!(g01, exp::g01::run);
smoke!(g02, exp::g02::run);
smoke!(g03, exp::g03::run);
smoke!(g04, exp::g04::run);
smoke!(g05, exp::g05::run);
smoke!(g06, exp::g06::run);
smoke!(ablation_radix_bits, exp::ablation::radix_bits);
smoke!(ablation_sort_bits, exp::ablation::sort_bits);
smoke!(ablation_phj_patterns, exp::ablation::phj_patterns);
smoke!(ablation_device_sweep, exp::device_sweep::run);

#[test]
fn json_reports_are_written_when_requested() {
    let dir = std::env::temp_dir().join("gpu_join_smoke");
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join("fig10.json");
    let mut args = tiny();
    args.json = Some(path.clone());
    let _ = exp::fig10::run(&args);
    let data = std::fs::read_to_string(&path).expect("report file written");
    let parsed: serde_json::Value = serde_json::from_str(&data).expect("valid json");
    assert_eq!(parsed["experiment"], "fig10");
    assert!(parsed["rows"].as_array().is_some_and(|r| !r.is_empty()));
    let _ = std::fs::remove_file(path);
}
