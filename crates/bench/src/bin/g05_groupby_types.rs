//! Thin wrapper around [`bench::exp::g05`]; see that module for what the
//! experiment reproduces.

fn main() {
    let args = bench::Args::parse();
    let _ = bench::exp::g05::run(&args);
}
