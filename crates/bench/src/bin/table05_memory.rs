//! Thin wrapper around [`bench::exp::table05`]; see that module for what the
//! experiment reproduces.

fn main() {
    let args = bench::Args::parse();
    let _ = bench::exp::table05::run(&args);
}
