//! Thin wrapper around [`bench::exp::g02`]; see that module for what the
//! experiment reproduces.

fn main() {
    let args = bench::Args::parse();
    let _ = bench::exp::g02::run(&args);
}
