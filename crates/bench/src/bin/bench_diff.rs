//! Compare fresh experiment reports against the checked-in baselines.
//!
//! ```text
//! bench_diff [--baseline DIR] [--fresh DIR] [--tol FRACTION]
//! ```
//!
//! Prints the per-figure drift table from [`bench::diff`] and exits
//! nonzero if any figure breaches the relative tolerance (default 5%;
//! simulated fields are deterministic and should match exactly, while
//! CPU-baseline wall-clock fields get at least
//! [`bench::diff::WALLCLOCK_TOL`]). Normally driven by
//! `scripts/bench_diff.sh`, which produces the fresh run in a temp dir.

use std::path::PathBuf;

fn main() {
    let mut baseline = PathBuf::from("results");
    let mut fresh = PathBuf::from("results-fresh");
    let mut tol = 0.05f64;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |what: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("error: {what} needs a value");
                std::process::exit(2)
            })
        };
        match flag.as_str() {
            "--baseline" => baseline = PathBuf::from(val("--baseline")),
            "--fresh" => fresh = PathBuf::from(val("--fresh")),
            "--tol" => {
                tol = val("--tol").parse().unwrap_or_else(|_| {
                    eprintln!("error: --tol needs a fraction (e.g. 0.05)");
                    std::process::exit(2)
                })
            }
            other => {
                eprintln!("error: unknown flag '{other}'");
                eprintln!("usage: bench_diff [--baseline DIR] [--fresh DIR] [--tol FRACTION]");
                std::process::exit(2)
            }
        }
    }

    let diffs = bench::diff::diff_dirs(&baseline, &fresh, tol).unwrap_or_else(|e| {
        eprintln!("error: cannot read report dirs: {e}");
        std::process::exit(2)
    });
    if diffs.is_empty() {
        eprintln!(
            "error: no *.json reports under {} or {}",
            baseline.display(),
            fresh.display()
        );
        std::process::exit(2);
    }
    print!("{}", bench::diff::render_drift_table(&diffs, tol));
    if diffs.iter().any(|d| !d.ok()) {
        std::process::exit(1);
    }
}
