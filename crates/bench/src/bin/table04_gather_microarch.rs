//! Thin wrapper around [`bench::exp::table04`]; see that module for what the
//! experiment reproduces.

fn main() {
    let args = bench::Args::parse();
    let _ = bench::exp::table04::run(&args);
}
