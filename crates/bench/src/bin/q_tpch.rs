//! TPC-H Q3/Q18 through the SQL frontend (`--sql` for ad-hoc queries).

fn main() {
    let args = bench::Args::parse();
    let _ = bench::exp::q_tpch::run(&args);
}
