//! Thin wrapper around [`bench::exp::g06`].

fn main() {
    let args = bench::Args::parse();
    let _ = bench::exp::g06::run(&args);
}
