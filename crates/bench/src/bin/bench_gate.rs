//! CI perf-regression gate over the checked-in smoke baselines.
//!
//! ```text
//! bench_gate [--baseline DIR] [--fresh DIR] [--tol FRACTION]
//! ```
//!
//! Compares a fresh smoke-scale run against the committed baselines
//! (default `results/smoke14/`) with [`bench::gate::run_gate`]: any
//! simulated field drifting past the tolerance (default
//! [`bench::gate::DEFAULT_TOL`], 1%) fails with exit code 1. Wall-clock
//! (CPU-baseline) fields are excluded from the verdict — CI hosts vary;
//! the simulator does not. Driven by `scripts/check.sh`.

use std::path::PathBuf;

fn main() {
    let mut baseline = PathBuf::from("results/smoke14");
    let mut fresh = PathBuf::from("target/smoke/results");
    let mut tol = bench::gate::DEFAULT_TOL;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |what: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("error: {what} needs a value");
                std::process::exit(2)
            })
        };
        match flag.as_str() {
            "--baseline" => baseline = PathBuf::from(val("--baseline")),
            "--fresh" => fresh = PathBuf::from(val("--fresh")),
            "--tol" => {
                tol = val("--tol").parse().unwrap_or_else(|_| {
                    eprintln!("error: --tol needs a fraction (e.g. 0.01)");
                    std::process::exit(2)
                })
            }
            other => {
                eprintln!("error: unknown flag '{other}'");
                eprintln!("usage: bench_gate [--baseline DIR] [--fresh DIR] [--tol FRACTION]");
                std::process::exit(2)
            }
        }
    }

    let gate = bench::gate::run_gate(&baseline, &fresh, tol).unwrap_or_else(|e| {
        eprintln!("error: cannot read report dirs: {e}");
        std::process::exit(2)
    });
    if gate.diffs.is_empty() {
        eprintln!(
            "error: no *.json reports under {} or {}",
            baseline.display(),
            fresh.display()
        );
        std::process::exit(2);
    }
    print!("{}", gate.render());
    if !gate.passed() {
        std::process::exit(1);
    }
}
