//! Thin wrapper around [`bench::exp::fig17`]; see that module for what the
//! experiment reproduces.

fn main() {
    let args = bench::Args::parse();
    let _ = bench::exp::fig17::run(&args);
}
