//! Thin wrapper around [`bench::exp::m02`].

fn main() {
    let args = bench::Args::parse();
    let _ = bench::exp::m02::run(&args);
}
