//! Ablation target; see [`bench::exp::ablation`].

fn main() {
    let args = bench::Args::parse();
    let _ = bench::exp::ablation::phj_patterns(&args);
}
