//! Thin wrapper around [`bench::exp::m03`].

fn main() {
    let args = bench::Args::parse();
    let _ = bench::exp::m03::run(&args);
}
