//! Thin wrapper around [`bench::exp::g03`]; see that module for what the
//! experiment reproduces.

fn main() {
    let args = bench::Args::parse();
    let _ = bench::exp::g03::run(&args);
}
