//! Thin wrapper around [`bench::exp::m04`].

fn main() {
    let args = bench::Args::parse();
    let _ = bench::exp::m04::run(&args);
}
