//! Thin wrapper around [`bench::exp::m01`].

fn main() {
    let args = bench::Args::parse();
    let _ = bench::exp::m01::run(&args);
}
