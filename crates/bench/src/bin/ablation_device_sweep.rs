//! Thin wrapper around [`bench::exp::device_sweep`].

fn main() {
    let args = bench::Args::parse();
    let _ = bench::exp::device_sweep::run(&args);
}
