//! Thin wrapper around [`bench::exp::ablation_fusion`].

fn main() {
    let args = bench::Args::parse();
    let _ = bench::exp::ablation_fusion::run(&args);
}
