//! Regression diffing for experiment reports.
//!
//! Compares freshly produced `results/*.json` [`crate::Report`] dumps
//! against the checked-in baselines with a relative tolerance, and renders
//! a per-figure drift table. The simulator is deterministic, so simulated
//! fields should match bit-for-bit; the tolerance exists for fp noise and
//! small model recalibrations. CPU-baseline fields (path contains `cpu`,
//! case-insensitive) measure real wall-clock and drift with the host, so
//! they get a much looser tolerance (at least [`WALLCLOCK_TOL`]).
//!
//! Driven by the `bench_diff` binary / `scripts/bench_diff.sh`.

use serde_json::Value;
use std::path::Path;

/// Minimum tolerance applied to wall-clock (CPU-baseline) fields: those
/// rows time the real host, so cross-machine runs legitimately differ by
/// integer factors without indicating a simulator regression.
pub const WALLCLOCK_TOL: f64 = 0.5;

/// Wall-clock fields are the CPU baseline's: `rows[3].CPU`,
/// `rows[0].cpu_s`, ….
pub(crate) fn is_wallclock(path: &str) -> bool {
    path.to_ascii_lowercase().contains("cpu")
}

/// One numeric field whose baseline/fresh values disagree.
#[derive(Debug, Clone)]
pub struct FieldDrift {
    /// JSON path of the field inside the report (e.g. `rows[3].total_s`).
    pub path: String,
    /// Value in the checked-in baseline.
    pub baseline: f64,
    /// Value in the fresh run.
    pub fresh: f64,
}

impl FieldDrift {
    /// Symmetric relative drift `|f - b| / max(|b|, |f|)` (0 when both are
    /// zero), so a sign-agnostic 5% tolerance means what it says regardless
    /// of which side is larger.
    pub fn rel(&self) -> f64 {
        let denom = self.baseline.abs().max(self.fresh.abs());
        if denom == 0.0 {
            0.0
        } else {
            (self.fresh - self.baseline).abs() / denom
        }
    }
}

/// Comparison result for one figure/table report.
#[derive(Debug, Clone)]
pub struct FigureDiff {
    /// Experiment name (file stem, e.g. `fig09`).
    pub name: String,
    /// Number of numeric fields compared.
    pub fields: usize,
    /// Worst-drifting field, if any field drifted at all.
    pub max_drift: Option<FieldDrift>,
    /// Fields whose relative drift exceeds the tolerance.
    pub breaches: Vec<FieldDrift>,
    /// Non-numeric mismatches: shape changes, string/bool flips, missing
    /// counterpart file. Any entry fails the diff regardless of tolerance.
    pub structural: Vec<String>,
}

impl FigureDiff {
    /// True when the figure is within tolerance and structurally identical.
    pub fn ok(&self) -> bool {
        self.breaches.is_empty() && self.structural.is_empty()
    }
}

/// Compare two parsed reports. Only `rows` plus the identifying header
/// fields (`experiment`, `device`, `scale_log2`) participate: `findings`
/// are prose that embeds wall-clock numbers and legitimately drifts.
pub fn diff_reports(name: &str, baseline: &Value, fresh: &Value, tol: f64) -> FigureDiff {
    let mut d = FigureDiff {
        name: name.to_string(),
        fields: 0,
        max_drift: None,
        breaches: Vec::new(),
        structural: Vec::new(),
    };
    for key in ["experiment", "device", "scale_log2"] {
        if baseline.get(key) != fresh.get(key) {
            d.structural.push(format!(
                "{key}: baseline {:?} vs fresh {:?}",
                baseline.get(key).unwrap_or(&Value::Null),
                fresh.get(key).unwrap_or(&Value::Null)
            ));
        }
    }
    let empty = Value::Array(Vec::new());
    let b_rows = baseline.get("rows").unwrap_or(&empty);
    let f_rows = fresh.get("rows").unwrap_or(&empty);
    walk("rows", b_rows, f_rows, tol, &mut d);
    d
}

fn walk(path: &str, b: &Value, f: &Value, tol: f64, d: &mut FigureDiff) {
    match (b, f) {
        (Value::Number(bn), Value::Number(fn_)) => {
            let (bv, fv) = (bn.as_f64(), fn_.as_f64());
            d.fields += 1;
            let drift = FieldDrift {
                path: path.to_string(),
                baseline: bv,
                fresh: fv,
            };
            if drift.rel() > d.max_drift.as_ref().map_or(0.0, |m| m.rel()) {
                d.max_drift = Some(drift.clone());
            }
            let tol = if is_wallclock(path) {
                tol.max(WALLCLOCK_TOL)
            } else {
                tol
            };
            if drift.rel() > tol {
                d.breaches.push(drift);
            }
        }
        (Value::Array(ba), Value::Array(fa)) => {
            if ba.len() != fa.len() {
                d.structural
                    .push(format!("{path}: {} vs {} elements", ba.len(), fa.len()));
                return;
            }
            for (i, (bv, fv)) in ba.iter().zip(fa).enumerate() {
                walk(&format!("{path}[{i}]"), bv, fv, tol, d);
            }
        }
        // The vendored `serde_json` stores objects as ordered
        // `Vec<(String, Value)>`; match fields by key, not position.
        (Value::Object(bo), Value::Object(fo)) => {
            for (k, bv) in bo {
                match fo.iter().find(|(fk, _)| fk == k) {
                    Some((_, fv)) => walk(&format!("{path}.{k}"), bv, fv, tol, d),
                    None => d.structural.push(format!("{path}.{k}: missing in fresh")),
                }
            }
            for (k, _) in fo {
                if !bo.iter().any(|(bk, _)| bk == k) {
                    d.structural
                        .push(format!("{path}.{k}: missing in baseline"));
                }
            }
        }
        _ if b == f => {} // equal strings / bools / nulls
        _ => d.structural.push(format!("{path}: {b:?} vs {f:?}")),
    }
}

/// Diff every `*.json` report present in `baseline_dir` against its
/// namesake in `fresh_dir`, sorted by name. A report missing on either
/// side becomes a structural failure for that figure.
pub fn diff_dirs(
    baseline_dir: &Path,
    fresh_dir: &Path,
    tol: f64,
) -> std::io::Result<Vec<FigureDiff>> {
    let mut names: Vec<String> = Vec::new();
    for dir in [baseline_dir, fresh_dir] {
        for entry in std::fs::read_dir(dir)? {
            let p = entry?.path();
            if p.extension().is_some_and(|e| e == "json") {
                let stem = p.file_stem().unwrap().to_string_lossy().into_owned();
                if !names.contains(&stem) {
                    names.push(stem);
                }
            }
        }
    }
    names.sort();
    let mut out = Vec::new();
    for name in names {
        let load = |dir: &Path| -> Option<Value> {
            let raw = std::fs::read_to_string(dir.join(format!("{name}.json"))).ok()?;
            serde_json::from_str(&raw).ok()
        };
        match (load(baseline_dir), load(fresh_dir)) {
            (Some(b), Some(f)) => out.push(diff_reports(&name, &b, &f, tol)),
            (b, f) => out.push(FigureDiff {
                name,
                fields: 0,
                max_drift: None,
                breaches: Vec::new(),
                structural: vec![format!(
                    "report {} {}",
                    if b.is_none() {
                        "missing/unreadable in baseline"
                    } else {
                        "present in baseline"
                    },
                    if f.is_none() {
                        "but missing/unreadable in fresh run"
                    } else {
                        ""
                    }
                )],
            }),
        }
    }
    Ok(out)
}

/// Render the per-figure drift table plus a PASS/FAIL verdict line.
pub fn render_drift_table(diffs: &[FigureDiff], tol: f64) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<24} {:>7} {:>10} {:>9} {:>6}  worst field\n",
        "figure", "fields", "max drift", "breaches", "ok"
    ));
    for d in diffs {
        let (max, worst) = match &d.max_drift {
            Some(m) => (format!("{:.3}%", m.rel() * 100.0), m.path.clone()),
            None => ("0.000%".to_string(), "-".to_string()),
        };
        out.push_str(&format!(
            "{:<24} {:>7} {:>10} {:>9} {:>6}  {}\n",
            d.name,
            d.fields,
            max,
            d.breaches.len() + d.structural.len(),
            if d.ok() { "yes" } else { "NO" },
            worst
        ));
        for s in &d.structural {
            out.push_str(&format!("    ! {s}\n"));
        }
        for b in d.breaches.iter().take(5) {
            out.push_str(&format!(
                "    > {}: {} -> {} ({:+.3}%)\n",
                b.path,
                b.baseline,
                b.fresh,
                (b.fresh - b.baseline) / b.baseline.abs().max(f64::MIN_POSITIVE) * 100.0
            ));
        }
        if d.breaches.len() > 5 {
            out.push_str(&format!("    > ... and {} more\n", d.breaches.len() - 5));
        }
    }
    let failed = diffs.iter().filter(|d| !d.ok()).count();
    if failed == 0 {
        out.push_str(&format!(
            "PASS: {} figures within {:.1}% of baseline\n",
            diffs.len(),
            tol * 100.0
        ));
    } else {
        out.push_str(&format!(
            "FAIL: {failed}/{} figures breach the {:.1}% tolerance\n",
            diffs.len(),
            tol * 100.0
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn report(rows: Value) -> Value {
        json!({"experiment": "figX", "title": "t", "device": "a100",
               "scale_log2": 22, "rows": rows, "findings": ["text 1.23 s"]})
    }

    #[test]
    fn identical_reports_pass() {
        let r = report(json!([json!({"a": 1.0, "alg": "PHJ-UM"})]));
        let d = diff_reports("figX", &r, &r, 0.01);
        assert!(d.ok());
        assert_eq!(d.fields, 1); // "a" — strings and headers aren't numeric fields
        assert!(d.max_drift.is_none(), "nothing drifted");
    }

    #[test]
    fn drift_within_tolerance_passes_and_is_reported() {
        let b = report(json!([json!({"t": 100.0})]));
        let f = report(json!([json!({"t": 101.0})]));
        let d = diff_reports("figX", &b, &f, 0.05);
        assert!(d.ok());
        let m = d.max_drift.unwrap();
        assert!((m.rel() - 1.0 / 101.0).abs() < 1e-12);
    }

    #[test]
    fn drift_beyond_tolerance_breaches() {
        let b = report(json!([json!({"t": 100.0})]));
        let f = report(json!([json!({"t": 120.0})]));
        let d = diff_reports("figX", &b, &f, 0.05);
        assert!(!d.ok());
        assert_eq!(d.breaches.len(), 1);
        assert_eq!(d.breaches[0].path, "rows[0].t");
    }

    #[test]
    fn shape_and_string_changes_are_structural() {
        let b = report(json!([json!({"alg": "PHJ-UM", "t": 1.0})]));
        let f = report(json!([
            json!({"alg": "PHJ-OM", "t": 1.0}),
            json!({"alg": "X", "t": 2.0})
        ]));
        let d = diff_reports("figX", &b, &f, 0.5);
        assert!(!d.ok());
        assert!(d.structural.iter().any(|s| s.contains("1 vs 2 elements")));
        // findings prose is ignored even though it differs numerically
        let f2 = json!({"experiment": "figX", "title": "t", "device": "a100",
                        "scale_log2": 22, "rows": json!([json!({"alg": "PHJ-UM", "t": 1.0})]),
                        "findings": ["text 9.99 s"]});
        assert!(diff_reports("figX", &b, &f2, 0.5).ok());
    }

    #[test]
    fn nested_class_objects_diff_recursively() {
        // m02_serving rows nest per-class quantile objects under "classes";
        // the walker compares those leaf by leaf like any other field.
        let row = |p99: f64| {
            json!({"sweep": "offered_load", "rho": 0.5,
                   "classes": json!({"q18": json!({"count": 8, "p99_s": p99}),
                                     "q3": json!({"count": 8, "p99_s": 0.25})})})
        };
        let b = report(json!([row(1.0)]));
        let d = diff_reports("m02_serving", &b, &report(json!([row(1.0)])), 0.01);
        assert!(d.ok());
        assert_eq!(d.fields, 5, "rho + two counts + two p99s");
        let d = diff_reports("m02_serving", &b, &report(json!([row(1.2)])), 0.01);
        assert!(!d.ok());
        assert_eq!(d.breaches.len(), 1);
        assert_eq!(d.breaches[0].path, "rows[0].classes.q18.p99_s");
        // A class going missing is structural, not a tolerance question.
        let f = report(json!([json!({"sweep": "offered_load", "rho": 0.5,
                                     "classes": json!({"q18": json!({"count": 8, "p99_s": 1.0})})})]));
        let d = diff_reports("m02_serving", &b, &f, 0.5);
        assert!(d
            .structural
            .iter()
            .any(|s| s.contains("classes.q3: missing in fresh")));
    }

    #[test]
    fn wallclock_fields_get_the_loose_tolerance() {
        let b = report(json!([json!({"CPU": 10.0, "PHJ-OM": 10.0})]));
        let f = report(json!([json!({"CPU": 14.0, "PHJ-OM": 14.0})]));
        let d = diff_reports("figX", &b, &f, 0.05);
        // Both drift 40%, but only the simulated field breaches.
        assert_eq!(d.breaches.len(), 1);
        assert_eq!(d.breaches[0].path, "rows[0].PHJ-OM");
    }

    #[test]
    fn zero_baseline_drift_is_symmetric() {
        let drift = FieldDrift {
            path: "p".into(),
            baseline: 0.0,
            fresh: 0.0,
        };
        assert_eq!(drift.rel(), 0.0);
        let drift = FieldDrift {
            path: "p".into(),
            baseline: 0.0,
            fresh: 2.0,
        };
        assert_eq!(drift.rel(), 1.0);
    }
}
