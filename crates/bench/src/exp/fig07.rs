//! Figure 7: clustered vs unclustered GATHER efficiency *including* the
//! extra transformation cost — the core bet of the GFTR pattern. Three
//! bars per device: the unclustered gather alone (what *-UM pays), sort +
//! clustered gather (SMJ-OM), and partition + clustered gather (PHJ-OM).

use crate::{mtps, Args, Report};
use primitives::{gather, radix_partition, sort_pairs};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use sim::{Device, DeviceConfig};

fn bars(dev: &Device, n: usize) -> Vec<(String, f64)> {
    let keys: Vec<i32> = {
        let mut k: Vec<i32> = (0..n as i32).collect();
        k.shuffle(&mut rand::rngs::StdRng::seed_from_u64(7));
        k
    };
    let payload: Vec<i32> = keys.iter().map(|&k| k * 3).collect();

    let mut out = Vec::new();

    // *-UM: the map is an unsorted-ID permutation; only the gather runs.
    {
        let src = dev.upload(payload.clone(), "f7.src");
        let mut map: Vec<u32> = (0..n as u32).collect();
        map.shuffle(&mut rand::rngs::StdRng::seed_from_u64(8));
        let map = dev.upload(map, "f7.map");
        dev.reset_stats();
        dev.flush_l2();
        let _ = gather(dev, &src, &map);
        out.push(("unclustered (*-UM)".to_string(), mtps(n, dev.elapsed())));
    }
    // SMJ-OM: sort (key, payload), then a clustered gather.
    {
        let kb = dev.upload(keys.clone(), "f7.k");
        let vb = dev.upload(payload.clone(), "f7.v");
        dev.reset_stats();
        dev.flush_l2();
        let (_, sorted) = sort_pairs(dev, &kb, &vb);
        let map = dev.upload((0..n as u32).collect::<Vec<_>>(), "f7.cmap");
        let _ = gather(dev, &sorted, &map);
        out.push((
            "sort + clustered (SMJ-OM)".to_string(),
            mtps(n, dev.elapsed()),
        ));
    }
    // PHJ-OM: two-pass radix partition, then a clustered gather.
    {
        let kb = dev.upload(keys, "f7.k");
        let vb = dev.upload(payload, "f7.v");
        dev.reset_stats();
        dev.flush_l2();
        let p = radix_partition(dev, &kb, &vb, 16);
        let map = dev.upload((0..n as u32).collect::<Vec<_>>(), "f7.cmap");
        let _ = gather(dev, &p.vals, &map);
        out.push((
            "partition + clustered (PHJ-OM)".to_string(),
            mtps(n, dev.elapsed()),
        ));
    }
    out
}

/// Run the experiment.
pub fn run(args: &Args) -> Report {
    let mut report = Report::new(
        "fig07",
        "Clustered GATHER with transformation cost vs unclustered GATHER",
        args,
    );
    let n = args.tuples();
    println!("Figure 7 — gather efficiency for {n} items, both devices (paper-regime scaled)\n");
    println!(
        "{:<32} {:>14} {:>14}",
        "configuration", "A100 Mt/s", "3090 Mt/s"
    );

    let f = args.regime_factor();
    let a100 = bars(&Device::new(DeviceConfig::a100().scaled(f)), n);
    let r3090 = bars(&Device::new(DeviceConfig::rtx3090().scaled(f)), n);
    for ((label, a), (_, r)) in a100.iter().zip(&r3090) {
        println!("{label:<32} {a:>14.1} {r:>14.1}");
        report.push(serde_json::json!({
            "configuration": label, "a100_mtps": a, "rtx3090_mtps": r,
        }));
    }
    println!();

    let speedup = |bars: &[(String, f64)], i: usize| bars[i].1 / bars[0].1;
    report.finding(format!(
        "partition+clustered beats the unclustered gather {:.2}x on A100 / {:.2}x on RTX 3090 \
         (paper: 1.79x / 2.2x)",
        speedup(&a100, 2),
        speedup(&r3090, 2)
    ));
    report.finding(format!(
        "sort+clustered beats it {:.2}x on A100 / {:.2}x on RTX 3090 (paper: 1.23x / 1.37x)",
        speedup(&a100, 1),
        speedup(&r3090, 1)
    ));
    report.finish(args);
    report
}
