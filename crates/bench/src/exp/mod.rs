//! Experiment implementations, one module per paper artifact.
//!
//! Each module exposes `run(&Args) -> Report`; the `src/bin/*` targets are
//! thin wrappers, and `run_all` executes every experiment in sequence.

pub mod ablation;
pub mod ablation_fusion;
pub mod device_sweep;
pub mod fig01;
pub mod fig07;
pub mod fig08;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fig17;
pub mod fig18;
pub mod g01;
pub mod g02;
pub mod g03;
pub mod g04;
pub mod g05;
pub mod g06;
pub mod m01;
pub mod m02;
pub mod m03;
pub mod m04;
pub mod q_tpch;
pub mod table04;
pub mod table05;
pub mod table12;

use joins::{Algorithm, JoinConfig, JoinStats};
use sim::Device;
use workloads::JoinWorkload;

/// Run one workload through a set of algorithms on a shared device,
/// returning per-algorithm stats. Inputs are regenerated per algorithm so
/// the memory ledger starts clean each time.
pub(crate) fn run_algorithms(
    dev: &Device,
    w: &JoinWorkload,
    algorithms: &[Algorithm],
    config: &JoinConfig,
) -> Vec<(Algorithm, JoinStats)> {
    algorithms
        .iter()
        .map(|&alg| {
            let (r, s) = w.generate(dev);
            let out = joins::run_join(dev, alg, &r, &s, config);
            (alg, out.stats)
        })
        .collect()
}

/// Print the standard per-phase breakdown table header.
pub(crate) fn print_breakdown_header() {
    println!(
        "{:<12} {:>12} {:>12} {:>12} {:>12} {:>8}",
        "algorithm", "transform", "match", "materialize", "total", "mat %"
    );
}

/// Print one per-phase breakdown row and return its JSON form.
pub(crate) fn breakdown_row(label: &str, stats: &JoinStats) -> serde_json::Value {
    let p = stats.phases;
    println!(
        "{:<12} {:>12} {:>12} {:>12} {:>12} {:>7.0}%",
        label,
        p.transform.to_string(),
        p.match_find.to_string(),
        p.materialize.to_string(),
        p.total().to_string(),
        p.materialize_fraction() * 100.0
    );
    serde_json::json!({
        "algorithm": label,
        "transform_s": p.transform.secs(),
        "match_s": p.match_find.secs(),
        "materialize_s": p.materialize.secs(),
        "total_s": p.total().secs(),
        "materialize_fraction": p.materialize_fraction(),
        "rows": stats.rows,
        "peak_mem_bytes": stats.peak_mem_bytes,
    })
}

/// Total time of one algorithm out of a `run_algorithms` result set.
pub(crate) fn total_of(results: &[(Algorithm, JoinStats)], alg: Algorithm) -> f64 {
    results
        .iter()
        .find(|(a, _)| *a == alg)
        .map(|(_, s)| s.phases.total().secs())
        .expect("algorithm was run")
}
