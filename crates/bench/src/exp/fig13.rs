//! Figure 13: effect of the match ratio. High ratios make materialization
//! dominate (GFTR wins); below ~25% almost nothing is materialized and the
//! GFUR implementations pull ahead.

use crate::exp::{run_algorithms, total_of};
use crate::{mtps, Args, Report};
use joins::{Algorithm, JoinConfig};
use workloads::JoinWorkload;

/// Run the experiment.
pub fn run(args: &Args) -> Report {
    let mut report = Report::new("fig13", "Effect of different match ratios", args);
    let dev = args.device();
    let n = args.tuples();
    println!(
        "Figure 13 — wide join, |R| = |S| = {}, match ratio swept ({})\n",
        n, report.device
    );
    print!("{:<10}", "match %");
    for alg in Algorithm::GPU_VARIANTS {
        print!(" {:>10}", alg.name());
    }
    println!("  (M tuples/s)");

    let mut crossover: Option<f64> = None;
    let mut low_ratio_winner = Algorithm::PhjUm;
    for pct in [3.0f64, 6.0, 12.5, 25.0, 50.0, 100.0] {
        let w = JoinWorkload {
            r_tuples: n,
            s_tuples: n,
            match_ratio: pct / 100.0,
            ..JoinWorkload::wide(n)
        };
        let results = run_algorithms(&dev, &w, &Algorithm::GPU_VARIANTS, &JoinConfig::default());
        print!("{pct:<10}");
        let mut row = serde_json::json!({"match_ratio_pct": pct});
        for (alg, stats) in &results {
            let tput = mtps(w.total_tuples(), stats.phases.total());
            print!(" {tput:>10.1}");
            row[alg.name()] = serde_json::json!(tput);
        }
        println!();
        let om = total_of(&results, Algorithm::PhjOm);
        let um = total_of(&results, Algorithm::PhjUm);
        if om <= um && crossover.is_none() {
            crossover = Some(pct);
        }
        if pct <= 6.0 {
            low_ratio_winner = results
                .iter()
                .min_by(|a, b| a.1.phases.total().partial_cmp(&b.1.phases.total()).unwrap())
                .unwrap()
                .0;
        }
        report.push(row);
    }
    println!();
    match crossover {
        Some(pct) => report.finding(format!(
            "PHJ-OM overtakes PHJ-UM once the match ratio reaches ~{pct}% \
             (paper: *-OM lose below 25%)"
        )),
        None => report.finding(
            "PHJ-OM never overtakes PHJ-UM in this sweep — check the scale/L2 regime".to_string(),
        ),
    }
    report.finding(format!(
        "at low match ratios the winner is {} (paper: PHJ-UM, thanks to cheap \
         unclustered gathers of tiny outputs)",
        low_ratio_winner.name()
    ));
    report.finish(args);
    report
}
