//! Q — TPC-H Q3 and Q18 arriving as SQL text.
//!
//! The end-to-end frontend demonstration: each query goes SQL → parse →
//! bind → lower → adaptive execution, with the lowering's composite-key
//! decisions (packed GROUP BY vs functional-dependency reduction, packed
//! multi-key ORDER BY) printed alongside the timings. Every query runs
//! both fused and unfused and the experiment asserts the outputs are
//! byte-identical — the frontend must not perturb the engine.
//!
//! `--sql '<query>'` replaces the built-in pair with an ad-hoc query over
//! the same catalog.

use crate::{Args, Report};
use engine::demo::{q18_sql, q3_sql, tpch_full};
use engine::{execute, execute_unfused};

/// Run Q3/Q18 (or `--sql`) through the SQL frontend.
pub fn run(args: &Args) -> Report {
    let mut report = Report::new("q_tpch", "TPC-H Q3/Q18 through the SQL frontend", args);
    let dev = args.device();
    let lineitems = args.tuples() / 2;
    let catalog = tpch_full(&dev, lineitems, 42);
    println!(
        "Q — SQL frontend, ~{} lineitems / {} orders ({})\n",
        lineitems,
        lineitems / 4,
        report.device
    );

    let queries: Vec<(String, String)> = match &args.sql {
        Some(sql) => vec![("adhoc".to_string(), sql.clone())],
        None => vec![
            ("Q3".to_string(), q3_sql().to_string()),
            ("Q18".to_string(), q18_sql().to_string()),
        ],
    };

    for (name, text) in &queries {
        let lowered = match sql::plan_sql(text, &catalog) {
            Ok(l) => l,
            Err(e) => {
                println!("{name}: SQL error: {e}");
                report.push(serde_json::json!({"query": name, "error": e.to_string()}));
                continue;
            }
        };
        for note in &lowered.notes {
            println!("{name}: {note}");
        }
        let fused = execute(&dev, &catalog, &lowered.plan).expect("lowered plan runs");
        let unfused =
            execute_unfused(&dev, &catalog, &lowered.plan).expect("lowered plan runs unfused");
        // Byte-identical means names, values AND row order — no sorting
        // before the comparison.
        assert_eq!(
            fused.table.column_names(),
            unfused.table.column_names(),
            "{name}: fused and unfused schemas must match"
        );
        for (col, c) in fused.table.columns() {
            assert_eq!(
                c.to_vec_i64(),
                unfused.table.column(col).unwrap().to_vec_i64(),
                "{name}: fused and unfused must agree byte-for-byte in {col}"
            );
        }
        let t_fused = fused.stats.total_time().secs();
        let t_unfused = unfused.stats.total_time().secs();
        println!(
            "{name}: {} rows, fused {:.3}ms, unfused {:.3}ms ({:.2}x)\n",
            fused.table.num_rows(),
            t_fused * 1e3,
            t_unfused * 1e3,
            t_unfused / t_fused
        );
        if args.explain_enabled() {
            args.record_explain(
                &format!("q_tpch {name}"),
                &engine::QueryExplain::from_stats(dev.config(), &fused.stats),
            );
        }
        report.push(serde_json::json!({
            "query": name,
            "rows": fused.table.num_rows(),
            "fused_s": t_fused,
            "unfused_s": t_unfused,
            "notes": lowered.notes,
        }));
        if name == "Q3" {
            report.finding(format!(
                "Q3 from SQL lowers to a packed composite GROUP BY and a packed \
                 two-key ORDER BY, and fusion wins {:.2}x over unfused execution",
                t_unfused / t_fused
            ));
        }
        if name == "Q18" {
            let strategy = lowered
                .notes
                .iter()
                .find(|n| n.starts_with("GROUP BY"))
                .map(|n| {
                    if n.contains("FD-REDUCE") {
                        "functional-dependency reduction"
                    } else {
                        "composite-key packing"
                    }
                })
                .unwrap_or("single-key grouping");
            report.finding(format!(
                "Q18's five-column GROUP BY lowers via {strategy} at this scale"
            ));
        }
    }
    report.finish(args);
    report
}
