//! G6 (SIGMOD extension): whole query segments through the engine — the
//! operator choices of the paper measured where they actually live, inside
//! scan/filter/join/aggregate plans. Reports per-query times with the join
//! implementation pinned to each variant vs the decision tree's pick.

use crate::{Args, Report};
use engine::demo::{q18_like, q1_like, q3_like, tpch_mini};
use engine::{execute, Plan};
use joins::Algorithm;

fn pin_joins(plan: Plan, alg: Algorithm) -> Plan {
    match plan {
        Plan::Join {
            left,
            right,
            left_key,
            right_key,
            kind,
            ..
        } => Plan::Join {
            left: Box::new(pin_joins(*left, alg)),
            right: Box::new(pin_joins(*right, alg)),
            left_key,
            right_key,
            kind,
            algorithm: Some(alg),
        },
        Plan::Filter { input, predicate } => Plan::Filter {
            input: Box::new(pin_joins(*input, alg)),
            predicate,
        },
        Plan::Project { input, exprs } => Plan::Project {
            input: Box::new(pin_joins(*input, alg)),
            exprs,
        },
        Plan::Aggregate {
            input,
            group_by,
            aggs,
            algorithm,
        } => Plan::Aggregate {
            input: Box::new(pin_joins(*input, alg)),
            group_by,
            aggs,
            algorithm,
        },
        Plan::Sort {
            input,
            by,
            desc,
            limit,
        } => Plan::Sort {
            input: Box::new(pin_joins(*input, alg)),
            by,
            desc,
            limit,
        },
        Plan::Limit { input, count } => Plan::Limit {
            input: Box::new(pin_joins(*input, alg)),
            count,
        },
        Plan::Distinct { input, column } => Plan::Distinct {
            input: Box::new(pin_joins(*input, alg)),
            column,
        },
        scan @ Plan::Scan { .. } => scan,
    }
}

/// Run the experiment.
pub fn run(args: &Args) -> Report {
    let mut report = Report::new("g06", "Query segments through the engine", args);
    let dev = args.device();
    let orders = args.tuples() / 8; // lineitem = orders * 4 rows
    let catalog = tpch_mini(&dev, orders, 99);
    println!(
        "G6 — TPC-H-shaped plans, {} orders / ~{} lineitems ({})\n",
        orders,
        orders * 4,
        report.device
    );
    println!(
        "{:<38} {:>10} {:>10} {:>10} {:>10}",
        "query", "SMJ-OM", "PHJ-UM", "PHJ-OM", "auto"
    );

    for (name, plan) in [
        ("Q1-like (no join)", q1_like()),
        ("Q3-like (2 joins + agg)", q3_like()),
        ("Q18-like (join + agg + having)", q18_like()),
    ] {
        print!("{name:<38}");
        let mut row = serde_json::json!({"query": name});
        let mut auto_t = 0.0;
        let mut best_pinned = f64::INFINITY;
        for pick in [
            Some(Algorithm::SmjOm),
            Some(Algorithm::PhjUm),
            Some(Algorithm::PhjOm),
            None,
        ] {
            let p = match pick {
                Some(alg) => pin_joins(plan.clone(), alg),
                None => plan.clone(),
            };
            let out = execute(&dev, &catalog, &p).expect("demo plans bind");
            let t = out.stats.total_time().secs();
            print!(" {:>9.2}ms", t * 1e3);
            let label = pick.map_or("auto", |a| a.name());
            if pick.is_none() && args.explain_enabled() {
                args.record_explain(
                    &format!("g06 {name} (auto)"),
                    &engine::QueryExplain::from_stats(dev.config(), &out.stats),
                );
            }
            row[label] = serde_json::json!(t);
            if pick.is_none() {
                auto_t = t;
            } else {
                best_pinned = best_pinned.min(t);
            }
        }
        println!();
        report.push(row);
        if name.contains("Q18") {
            report.finding(format!(
                "on the Q18 segment, the decision tree's pick lands within {:.2}x of the \
                 best pinned join implementation",
                auto_t / best_pinned
            ));
        }
    }
    report.finish(args);
    report
}
