//! M1 (multi-query extension): N concurrent tenants on one simulated
//! device, through `engine::scheduler`. Three sweeps:
//!
//! 1. **Tenant count** — 1..8 round-robin tenants running the demo query
//!    mix: aggregate throughput, mean and p99 simulated completion latency,
//!    and the slowest tenant's stretch vs its solo time.
//! 2. **Policy** — the same 4-tenant mix under serial, round-robin and a
//!    4:2:1:1 weighted-fair split: the makespan is policy-invariant (the
//!    device is work-conserving), only *who waits* moves.
//! 3. **Budget split** — 4 equal tenants with per-tenant budgets derived
//!    from the measured solo peak: ample budgets run in-core, halved
//!    budgets push joins out-of-core (chunked re-plans), and a starved
//!    tenant fails alone with a typed error while its co-tenants' simulated
//!    busy time stays bit-identical.
//!
//! Finish times are read from the base device trace (kernel events are
//! device-timestamped and tagged with the owning query), so every reported
//! number is deterministic simulated time.

use crate::{Args, Report};
use engine::demo::{q18_like, q1_like, q3_like, tpch_mini};
use engine::scheduler::{Policy, QuerySpec};
use engine::{Catalog, NodeStats, Plan};
use sim::Device;

/// Per-tenant finish times (seconds since `t0`) from the base trace.
fn finishes(dev: &Device, t0: f64, tenants: usize) -> Vec<f64> {
    let trace = dev.trace_snapshot().expect("m01 enables tracing");
    (0..tenants as u32)
        .map(|q| {
            trace
                .kernels()
                .filter(|k| k.query == Some(q) && k.start >= t0 - 1e-12)
                .map(|k| k.start + k.dur - t0)
                .fold(0.0, f64::max)
        })
        .collect()
}

fn p99(latencies: &[f64]) -> f64 {
    let mut v = latencies.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let idx = ((v.len() as f64 * 0.99).ceil() as usize).max(1) - 1;
    v[idx]
}

fn count_chunked(stats: &NodeStats) -> usize {
    let here = usize::from(stats.label.contains("chunked x"));
    here + stats.children.iter().map(count_chunked).sum::<usize>()
}

/// The demo mix, cycled across tenants.
fn mix_plan(i: usize) -> Plan {
    match i % 3 {
        0 => q18_like(),
        1 => q3_like(),
        _ => q1_like(),
    }
}

struct Session {
    reports: Vec<engine::scheduler::QueryReport>,
    finishes: Vec<f64>,
    makespan: f64,
}

fn session(dev: &Device, catalog: &Catalog, specs: Vec<QuerySpec>, policy: Policy) -> Session {
    let n = specs.len();
    let t0 = dev.elapsed().secs();
    let reports = engine::run_queries(dev, catalog, specs, policy);
    let makespan = dev.elapsed().secs() - t0;
    Session {
        reports,
        finishes: finishes(dev, t0, n),
        makespan,
    }
}

/// Run the experiment.
pub fn run(args: &Args) -> Report {
    let mut report = Report::new(
        "m01_multi_query",
        "Multi-query scheduling: throughput, fairness, latency",
        args,
    );
    let dev = args.device();
    // Finish times come from the tagged base trace, so tracing is always on
    // here (it does not perturb the simulation — see tests/trace_invariants).
    dev.enable_tracing();
    let orders = args.tuples() / 16;
    let catalog = tpch_mini(&dev, orders, 99);
    println!(
        "M1 — concurrent tenants over the demo catalog, {} orders / ~{} lineitems ({})\n",
        orders,
        orders * 4,
        report.device
    );

    // Solo baselines: each mix shape alone on the device.
    let solo_busy: Vec<f64> = (0..3)
        .map(|i| {
            let s = session(
                &dev,
                &catalog,
                vec![QuerySpec::new(mix_plan(i))],
                Policy::Serial,
            );
            assert!(s.reports[0].result.is_ok(), "solo demo query must run");
            s.reports[0].busy.secs()
        })
        .collect();

    // -- Sweep 1: tenant count under round-robin -------------------------
    println!(
        "{:<9} {:>12} {:>14} {:>14} {:>14} {:>9}",
        "tenants", "makespan", "throughput", "mean lat", "p99 lat", "stretch"
    );
    for n in [1usize, 2, 4, 8] {
        let specs = (0..n).map(|i| QuerySpec::new(mix_plan(i))).collect();
        let s = session(&dev, &catalog, specs, Policy::RoundRobin);
        assert!(s.reports.iter().all(|r| r.result.is_ok()));
        let mean = s.finishes.iter().sum::<f64>() / n as f64;
        let p99v = p99(&s.finishes);
        // The slowest tenant's completion vs the ideal fair share: N x its
        // own solo busy time (on a one-kernel-at-a-time device, N x solo is
        // what a perfectly fair policy owes the heaviest query).
        let stretch = s
            .finishes
            .iter()
            .enumerate()
            .map(|(i, f)| f / (n as f64 * solo_busy[i % 3]))
            .fold(0.0_f64, f64::max);
        let throughput = n as f64 / s.makespan;
        println!(
            "{n:<9} {:>10.2}ms {:>11.1} q/s {:>12.2}ms {:>12.2}ms {:>9.3}",
            s.makespan * 1e3,
            throughput,
            mean * 1e3,
            p99v * 1e3,
            stretch
        );
        report.push(serde_json::json!({
            "sweep": "tenants", "tenants": n, "policy": "round-robin",
            "makespan_s": s.makespan, "throughput_qps": throughput,
            "mean_latency_s": mean, "p99_latency_s": p99v, "slowest_stretch": stretch,
        }));
        if n == 8 {
            report.finding(format!(
                "8 round-robin tenants: the slowest finishes within {stretch:.2}x of N x its \
                 solo simulated time (fair-share ideal = 1.0)"
            ));
        }
    }

    // -- Sweep 2: policy at 4 tenants ------------------------------------
    println!();
    let mut makespans = Vec::new();
    for (name, policy, weights) in [
        ("serial", Policy::Serial, [1.0, 1.0, 1.0, 1.0]),
        ("round-robin", Policy::RoundRobin, [1.0, 1.0, 1.0, 1.0]),
        (
            "weighted 4:2:1:1",
            Policy::WeightedFair,
            [4.0, 2.0, 1.0, 1.0],
        ),
    ] {
        let specs = (0..4)
            .map(|i| QuerySpec::new(mix_plan(i)).with_weight(weights[i]))
            .collect();
        let s = session(&dev, &catalog, specs, policy);
        assert!(s.reports.iter().all(|r| r.result.is_ok()));
        // Each tenant comes back with its own attributed EXPLAIN ANALYZE
        // report; under --explain, record the round-robin session's.
        if policy == Policy::RoundRobin {
            for r in &s.reports {
                if let Some(ex) = &r.explain {
                    args.record_explain(&format!("m01 round-robin tenant {}", r.query), ex);
                }
            }
        }
        let mean = s.finishes.iter().sum::<f64>() / 4.0;
        let p99v = p99(&s.finishes);
        println!(
            "policy {name:<18} makespan {:>8.2}ms   mean lat {:>8.2}ms   p99 lat {:>8.2}ms",
            s.makespan * 1e3,
            mean * 1e3,
            p99v * 1e3
        );
        report.push(serde_json::json!({
            "sweep": "policy", "tenants": 4, "policy": name,
            "makespan_s": s.makespan, "mean_latency_s": mean, "p99_latency_s": p99v,
        }));
        makespans.push(s.makespan);
    }
    let spread = makespans.iter().cloned().fold(0.0_f64, f64::max)
        / makespans.iter().cloned().fold(f64::INFINITY, f64::min);
    report.finding(format!(
        "the 4-tenant makespan is policy-invariant within {:.2}% (the simulated device is \
         work-conserving); scheduling only redistributes who waits",
        (spread - 1.0) * 100.0
    ));

    // -- Sweep 3: budget splits at 4 tenants ------------------------------
    println!();
    // The budget sweep runs a plain FK join (the operator the out-of-core
    // re-planner covers); its direct-path peak calibrates the splits.
    let budget_plan = || Plan::scan("orders").join(Plan::scan("lineitem"), "o_id", "l_oid");
    let solo_peak = {
        let s = session(
            &dev,
            &catalog,
            vec![QuerySpec::new(budget_plan())],
            Policy::Serial,
        );
        s.reports[0].peak_mem_bytes
    };
    // "Ample" must clear not just the direct-path peak but the chunk
    // planner's conservative fit estimate, which has a fixed scratch floor.
    let ample = (solo_peak * 4).max(4 << 20);
    let mut ample_busy: Vec<u64> = Vec::new();
    for (name, budgets) in [
        ("ample 4x peak", [ample; 4]),
        // Half the solo peak, floored just above the chunk planner's fixed
        // scratch so tiny smoke scales spill instead of failing outright.
        ("half peak", [(solo_peak / 2).max(192 << 10); 4]),
        (
            "one starved",
            [ample, ample, ample, (solo_peak / 8).max(4096)],
        ),
    ] {
        let specs = (0..4)
            .map(|i| QuerySpec::new(budget_plan()).with_budget(budgets[i]))
            .collect();
        let s = session(&dev, &catalog, specs, Policy::RoundRobin);
        let completed = s.reports.iter().filter(|r| r.result.is_ok()).count();
        let out_of_core: usize = s
            .reports
            .iter()
            .filter_map(|r| r.result.as_ref().ok())
            .map(|o| count_chunked(&o.stats))
            .sum();
        for r in &s.reports {
            assert!(
                r.peak_mem_bytes <= r.budget_bytes,
                "tenant ledger must never cross its budget"
            );
        }
        if name.starts_with("ample") {
            ample_busy = s.reports.iter().map(|r| r.busy.secs().to_bits()).collect();
        } else if name.starts_with("one starved") && completed >= 3 {
            // Isolation: the three ample co-tenants are bit-identical to
            // their ample-split runs even while tenant 3 spills or dies.
            for (r, &expected) in s.reports.iter().zip(&ample_busy).take(3) {
                assert_eq!(
                    r.busy.secs().to_bits(),
                    expected,
                    "co-tenant busy time must not depend on a starved tenant"
                );
            }
        }
        let p99v = p99(&s.finishes);
        println!(
            "budget {name:<16} completed {completed}/4   chunked joins {out_of_core:>2}   \
             makespan {:>8.2}ms   p99 lat {:>8.2}ms",
            s.makespan * 1e3,
            p99v * 1e3
        );
        report.push(serde_json::json!({
            "sweep": "budget", "tenants": 4, "split": name,
            "budget_bytes": budgets.to_vec(),
            "completed": completed, "chunked_joins": out_of_core,
            "makespan_s": s.makespan, "p99_latency_s": p99v,
        }));
    }
    report.finding(format!(
        "per-tenant budgets hold: no tenant's ledger peak ever exceeded its reservation \
         (solo join peak {:.1} MiB); undersized budgets re-plan joins out-of-core instead of \
         OOMing co-tenants",
        solo_peak as f64 / (1 << 20) as f64
    ));

    report.finish(args);
    report
}
