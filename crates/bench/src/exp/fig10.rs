//! Figure 10: phase breakdown of *wide* joins (two payload columns per
//! relation) — where materialization dominates the GFUR implementations and
//! the paper's GFTR variants win.

use crate::exp::{breakdown_row, print_breakdown_header, run_algorithms, total_of};
use crate::{Args, Report};
use joins::{Algorithm, JoinConfig};
use workloads::JoinWorkload;

/// Run the experiment.
pub fn run(args: &Args) -> Report {
    let mut report = Report::new("fig10", "Time breakdown of wide joins", args);
    let dev = args.device();
    let algorithms = [
        Algorithm::Nphj,
        Algorithm::SmjUm,
        Algorithm::SmjOm,
        Algorithm::PhjUm,
        Algorithm::PhjOm,
    ];
    let mut last = Vec::new();
    for shift in [2, 1, 0] {
        let r_tuples = args.tuples() >> shift;
        let w = JoinWorkload {
            s_tuples: r_tuples * 2,
            ..JoinWorkload::wide(r_tuples)
        };
        println!(
            "\nFigure 10 — wide join, |R| = {} (|S| = 2|R|, 2 payload cols each), {}",
            r_tuples, report.device
        );
        print_breakdown_header();
        let results = run_algorithms(&dev, &w, &algorithms, &JoinConfig::default());
        for (alg, stats) in &results {
            let mut row = breakdown_row(alg.name(), stats);
            row["r_tuples"] = serde_json::json!(r_tuples);
            report.push(row);
        }
        last = results;
    }
    println!();
    let f = |a| total_of(&last, a);
    report.finding(format!(
        "SMJ-OM is {:.2}x faster than SMJ-UM (paper: ~1.6x)",
        f(Algorithm::SmjUm) / f(Algorithm::SmjOm)
    ));
    report.finding(format!(
        "PHJ-OM is {:.2}x faster than PHJ-UM (paper: ~2.3x)",
        f(Algorithm::PhjUm) / f(Algorithm::PhjOm)
    ));
    report.finding(format!(
        "PHJ-OM is {:.2}x faster than SMJ-OM (paper: ~1.4x — partitioning needs half \
         the passes of sorting)",
        f(Algorithm::SmjOm) / f(Algorithm::PhjOm)
    ));
    report.finish(args);
    report
}
