//! Tables 1 and 2: the analytic memory-consumption model of Section 4.4,
//! printed for a concrete column size and cross-checked against measured
//! simulator peaks.

use crate::exp::run_algorithms;
use crate::{gb, Args, Report};
use gpu_join::memory_model::{gftr_peak, gftr_table, gfur_peak, gfur_table, PhaseRow};
use joins::{Algorithm, JoinConfig};
use workloads::JoinWorkload;

fn print_table(name: &str, rows: &[PhaseRow]) {
    println!("\n{name}");
    println!(
        "{:<14} {:<52} {:>12} {:>12} {:>12} {:>12}",
        "phase", "activity", "alloc", "free", "after", "peak"
    );
    for r in rows {
        println!(
            "{:<14} {:<52} {:>12} {:>12} {:>12} {:>12}",
            r.phase,
            r.activity,
            gb(r.alloc_on_entry),
            gb(r.free_on_exit),
            gb(r.used_after_exit),
            gb(r.peak)
        );
    }
}

/// Run the experiment.
pub fn run(args: &Args) -> Report {
    let mut report = Report::new("table12", "GFUR/GFTR memory consumption model", args);
    let n = args.tuples() as u64;
    let m_c = n * 4; // one 4-byte column
    let m_t = 1 << 20; // histogram-and-scan intermediates

    print_table("Table 1 — GFUR", &gfur_table(m_t, m_c));
    print_table("Table 2 — GFTR", &gftr_table(m_t, m_c));
    println!(
        "\nanalytic peaks: GFUR {} vs GFTR {}",
        gb(gfur_peak(m_t, m_c)),
        gb(gftr_peak(m_t, m_c))
    );
    report.push(serde_json::json!({
        "m_c": m_c, "m_t": m_t,
        "gfur_peak": gfur_peak(m_t, m_c),
        "gftr_peak": gftr_peak(m_t, m_c),
    }));

    // Cross-check against measured peaks on the wide default workload.
    let dev = args.device();
    let w = JoinWorkload::wide(args.tuples());
    let results = run_algorithms(&dev, &w, &Algorithm::GPU_VARIANTS, &JoinConfig::default());
    println!();
    for (alg, stats) in &results {
        println!(
            "measured peak {:<8} {}",
            alg.name(),
            gb(stats.peak_mem_bytes)
        );
        report.push(serde_json::json!({
            "algorithm": alg.name(), "measured_peak": stats.peak_mem_bytes,
        }));
    }
    let peak = |a: Algorithm| {
        results
            .iter()
            .find(|(x, _)| *x == a)
            .unwrap()
            .1
            .peak_mem_bytes
    };
    report.finding(format!(
        "analytic dominance holds in measurement: SMJ-OM <= SMJ-UM ({}) and \
         PHJ-OM <= PHJ-UM ({})",
        peak(Algorithm::SmjOm) <= peak(Algorithm::SmjUm),
        peak(Algorithm::PhjOm) <= peak(Algorithm::PhjUm),
    ));
    report.finish(args);
    report
}
