//! G5 (SIGMOD extension): grouped aggregation across data-type mixes,
//! the aggregation analog of Figure 15 — 8-byte columns double the
//! transform cost of the GFTR variants while the hash table barely notices.

use crate::{mtps, Args, Report};
use columnar::DType;
use groupby::{AggFn, GroupByAlgorithm, GroupByConfig};
use workloads::agg::AggWorkload;

/// Run the experiment.
pub fn run(args: &Args) -> Report {
    let mut report = Report::new("g05", "Grouped aggregation data types", args);
    let dev = args.device();
    let n = args.tuples();
    println!(
        "G5 — SUM over 2 columns, {} rows, 2^16 groups, type mixes ({})\n",
        n, report.device
    );
    print!("{:<22}", "types");
    for alg in GroupByAlgorithm::ALL {
        print!(" {:>10}", alg.name());
    }
    println!("  (M rows/s)");

    let mut sort_4b = 0.0;
    let mut sort_8b = 0.0;
    for (key, val, label) in [
        (DType::I32, DType::I32, "4B key + 4B values"),
        (DType::I32, DType::I64, "4B key + 8B values"),
        (DType::I64, DType::I64, "8B key + 8B values"),
    ] {
        let w = AggWorkload {
            key_type: key,
            payloads: vec![val; 2],
            ..AggWorkload::uniform(n, 1 << 16)
        };
        let input = w.generate(&dev);
        print!("{label:<22}");
        let mut row = serde_json::json!({"types": label});
        for alg in GroupByAlgorithm::ALL {
            let out = groupby::run_group_by(
                &dev,
                alg,
                &input,
                &[AggFn::Sum, AggFn::Sum],
                &GroupByConfig::default(),
            );
            let tput = mtps(n, out.stats.phases.total());
            print!(" {tput:>10.1}");
            row[alg.name()] = serde_json::json!(tput);
            if alg == GroupByAlgorithm::SortGftr {
                if val == DType::I32 {
                    sort_4b = tput;
                } else if key == DType::I64 {
                    sort_8b = tput;
                }
            }
        }
        println!();
        report.push(row);
    }
    println!();
    report.finding(format!(
        "sort-GFTR loses {:.1}x of its throughput moving from all-4B to all-8B \
         (wider sorting passes, the Figure 15 effect)",
        sort_4b / sort_8b
    ));
    report.finish(args);
    report
}
