//! M4 (SLO): per-class latency targets, attainment tracking and automatic
//! slow-query attribution on the serving path.
//!
//! The m02 open-loop mix (Q18/Q3/Q1 shapes, seeded exponential arrivals)
//! runs at offered loads below, near and past the calibrated capacity,
//! with a per-class SLO of 2.5x each class's solo service time configured
//! via [`ServingConfig::with_slo`]. Every step runs with lifecycle tracing
//! and metrics on, then asks [`engine::slow_queries`] *why* the misses
//! were slow.
//!
//! The headline property, asserted: attribution flips from execution to
//! queueing as load crosses capacity. Below capacity queries spend their
//! latency executing (what little misses exist are exec-dominated, and
//! mean exec time exceeds mean queue wait); past saturation the backlog
//! grows without bound and the digest pins the blame on the admission
//! queue — the worst slow query is queue-dominated and mean queue wait
//! dwarfs mean exec time. SLO attainment and debt come straight from the
//! metrics registry (`slo_met_total` / `slo_missed_total` /
//! `slo_attainment_ratio` / `slo_debt_seconds_total`), not bench-side
//! bookkeeping.

use crate::{Args, Report};
use engine::demo::{q18_like, q1_like, q3_like, tpch_mini};
use engine::scheduler::{OpenQuery, Policy, QuerySpec, ServingConfig};
use engine::Plan;
use sim::SimTime;

/// Arrivals per offered-load step (same regime as `m02`).
const ARRIVALS_PER_STEP: usize = 24;

/// Offered load as a fraction of calibrated capacity: one point well
/// below, one near, one well past saturation.
const RHO_SWEEP: [f64; 3] = [0.25, 0.75, 1.5];

/// SLO target as a multiple of each class's solo service time: generous
/// enough that an unloaded system always meets it, tight enough that a
/// saturated queue cannot.
const SLO_FACTOR: f64 = 2.5;

/// The demo mix, cycled across arrivals (same rotation as `m01`/`m02`).
fn mix(i: usize) -> (&'static str, Plan) {
    match i % 3 {
        0 => ("q18", q18_like()),
        1 => ("q3", q3_like()),
        _ => ("q1", q1_like()),
    }
}

/// `splitmix64` step — deterministic, platform-independent arrivals.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A uniform draw in `(0, 1]` (never 0, so `ln` is finite).
fn uniform(state: &mut u64) -> f64 {
    ((splitmix64(state) >> 11) + 1) as f64 / (1u64 << 53) as f64
}

/// Run the experiment.
pub fn run(args: &Args) -> Report {
    let mut report = Report::new(
        "m04_slo",
        "SLO attainment and slow-query attribution across the load curve",
        args,
    );
    let orders = args.tuples() / 16;

    // -- Calibration: solo-Serial service time per mix class ---------------
    let solo_busy: Vec<f64> = (0..3)
        .map(|i| {
            let dev = args.device();
            let catalog = tpch_mini(&dev, orders, 99);
            let (_, plan) = mix(i);
            let reports =
                engine::run_queries(&dev, &catalog, vec![QuerySpec::new(plan)], Policy::Serial);
            assert!(reports[0].result.is_ok(), "solo demo query must run");
            reports[0].busy.secs()
        })
        .collect();
    let mean_service = solo_busy.iter().sum::<f64>() / solo_busy.len() as f64;
    let capacity_qps = 1.0 / mean_service;
    let slos: Vec<(&str, f64)> = ["q18", "q3", "q1"]
        .iter()
        .zip(&solo_busy)
        .map(|(&c, &b)| (c, b * SLO_FACTOR))
        .collect();
    println!(
        "M4 — SLO tracking over the demo catalog, {} orders / ~{} lineitems ({})",
        orders,
        orders * 4,
        report.device
    );
    println!(
        "calibrated capacity ~{:.0} q/s; per-class SLO = {SLO_FACTOR}x solo service \
         (q18 {:.3}ms / q3 {:.3}ms / q1 {:.3}ms)\n",
        capacity_qps,
        slos[0].1 * 1e3,
        slos[1].1 * 1e3,
        slos[2].1 * 1e3
    );

    println!(
        "{:<6} {:>10} {:>10} {:>12} {:>6} {:>14} {:>16}",
        "rho", "met", "missed", "debt", "slow", "worst stage", "mean queue/exec"
    );

    // (rho, worst slow query's dominant stage, mean queue wait, mean exec)
    let mut flips: Vec<(f64, Option<String>, f64, f64)> = Vec::new();
    for (step, &rho) in RHO_SWEEP.iter().enumerate() {
        let lambda = rho * capacity_qps;
        // Fresh device per step; the digest needs lifecycle tracing and
        // the SLO counters need metrics, so both recorders are always on
        // here (a --trace/--metrics run exports byte-identical supersets).
        let dev = args.device();
        if !dev.tracing_enabled() {
            dev.enable_tracing();
        }
        if !dev.metrics_enabled() {
            dev.enable_metrics(args.metrics_interval());
        }
        let catalog = tpch_mini(&dev, orders, 99);
        let t0 = dev.elapsed().secs();

        let mut rng = 0x6d30_345f_736c_6f30_u64 ^ (step as u64); // "m04_slo0"
        let mut at = t0;
        let arrivals: Vec<OpenQuery> = (0..ARRIVALS_PER_STEP)
            .map(|i| {
                at += -uniform(&mut rng).ln() / lambda;
                let (class, plan) = mix(i);
                OpenQuery::new(SimTime::from_secs(at), class, QuerySpec::new(plan))
            })
            .collect();

        let mut serving = ServingConfig::new();
        for (class, slo) in &slos {
            serving = serving.with_slo(*class, *slo);
        }
        let reports =
            engine::run_open_loop_with(&dev, &catalog, arrivals, Policy::Serial, &serving);
        assert!(
            reports.iter().all(|r| r.result.is_ok()),
            "unbounded queue: every request must complete"
        );

        let snap = dev.metrics_snapshot().expect("metrics recorder is on");
        let trace = dev.trace_snapshot().expect("trace recorder is on");
        let explains: Vec<_> = reports
            .iter()
            .filter_map(|r| r.explain.clone().map(|e| (r.query, e)))
            .collect();
        let digest = engine::slow_queries(&trace, &snap, &explains);
        assert_eq!(digest.queries, ARRIVALS_PER_STEP);
        args.record_digest(&format!("m04_slo rho={rho:.2}"), &digest);

        // SLO accounting straight off the registry.
        let mut met_total = 0u64;
        let mut missed_total = 0u64;
        let mut debt_total = 0.0f64;
        let class_json: Vec<(String, serde_json::Value)> = slos
            .iter()
            .map(|(class, slo)| {
                let labels = [("class", *class)];
                let met = snap.registry.counter("slo_met_total", &labels);
                let missed = snap.registry.counter("slo_missed_total", &labels);
                let attainment = snap.registry.gauge("slo_attainment_ratio", &labels);
                let debt = snap.registry.gauge("slo_debt_seconds_total", &labels);
                assert_eq!(
                    met + missed,
                    snap.registry.counter("query_completed_total", &labels),
                    "every completed {class} query is judged against its SLO"
                );
                met_total += met;
                missed_total += missed;
                debt_total += debt;
                (
                    class.to_string(),
                    serde_json::json!({
                        "slo_s": slo, "met": met, "missed": missed,
                        "attainment": attainment, "debt_s": debt,
                    }),
                )
            })
            .collect();

        // Attribution flip evidence: the digest's verdict on the worst
        // slow query, plus population means from the lifecycle records.
        let worst_stage = digest.slow.first().map(|r| r.dominant_stage.clone());
        let mean_queue =
            reports.iter().map(|r| r.queue_wait().secs()).sum::<f64>() / reports.len() as f64;
        let mean_exec = reports.iter().map(|r| r.busy.secs()).sum::<f64>() / reports.len() as f64;

        println!(
            "{rho:<6} {met_total:>10} {missed_total:>10} {:>10.2}ms {:>6} {:>14} {:>7.2}/{:.2}ms",
            debt_total * 1e3,
            digest.slow.len(),
            worst_stage.as_deref().unwrap_or("-"),
            mean_queue * 1e3,
            mean_exec * 1e3
        );

        let lifecycle_json: Vec<serde_json::Value> = reports
            .iter()
            .enumerate()
            .map(|(i, r)| {
                serde_json::json!({
                    "query": r.query, "class": mix(i).0,
                    "arrival_s": r.arrival.secs(), "admitted_s": r.admitted.secs(),
                    "started_s": r.started.secs(), "completed_s": r.completion.secs(),
                    "queue_wait_s": r.queue_wait().secs(),
                })
            })
            .collect();
        report.push(serde_json::json!({
            "sweep": "slo", "rho": rho, "queries": ARRIVALS_PER_STEP,
            "met": met_total, "missed": missed_total, "debt_s": debt_total,
            "slow_queries": digest.slow.len(),
            "worst_dominant_stage": worst_stage,
            "mean_queue_wait_s": mean_queue, "mean_exec_s": mean_exec,
            "classes": serde_json::Value::Object(class_json),
            "lifecycle": lifecycle_json,
        }));
        flips.push((rho, worst_stage, mean_queue, mean_exec));
    }

    // The acceptance criterion, enforced: attribution flips from execution
    // to queueing as load crosses capacity.
    let below = &flips[0]; // rho = 0.25
    let above = flips.last().unwrap(); // rho = 1.5
    assert!(
        below.3 > below.2,
        "below capacity (rho={}) latency must be execution-dominated: \
         mean exec {:.3}ms vs mean queue wait {:.3}ms",
        below.0,
        below.3 * 1e3,
        below.2 * 1e3
    );
    assert!(
        above.2 > above.3,
        "past saturation (rho={}) latency must be queue-dominated: \
         mean queue wait {:.3}ms vs mean exec {:.3}ms",
        above.0,
        above.2 * 1e3,
        above.3 * 1e3
    );
    assert_eq!(
        above.1.as_deref(),
        Some("queue"),
        "past saturation the digest must blame the admission queue for the worst query"
    );
    report.finding(format!(
        "slow-query attribution flips execute->queue across capacity: at rho={} mean \
         exec/queue is {:.2}ms/{:.2}ms, at rho={} it is {:.2}ms/{:.2}ms and the digest \
         pins the worst miss on the '{}' stage",
        below.0,
        below.3 * 1e3,
        below.2 * 1e3,
        above.0,
        above.3 * 1e3,
        above.2 * 1e3,
        above.1.as_deref().unwrap_or("-")
    ));
    report.finding(format!(
        "SLO attainment and debt come from the registry (slo_met/missed_total, \
         slo_attainment_ratio, slo_debt_seconds_total) under per-class targets of \
         {SLO_FACTOR}x solo service; each stage attribution partitions its query's \
         latency exactly"
    ));

    report.finish(args);
    report
}
