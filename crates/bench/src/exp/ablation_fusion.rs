//! Fusion ablation: the same Filter → Project → Join chain executed with
//! operator fusion and GFTR ticket materialization on (`engine::execute`)
//! and off (`engine::execute_unfused`), sweeping the filter's selectivity.
//!
//! The unfused plan materializes every intermediate: the filter gathers all
//! payload columns, the projection rewrites them, and the join carries the
//! full payload width through partitioning and materialization. The fused
//! plan evaluates the whole Filter+Project run as one predicate over the
//! base table, then flows a 4-byte row-ID ticket through the join and
//! gathers payloads from the base exactly once, at the output. The gap
//! between the two — DRAM bytes, cycles, kernel launches per selectivity —
//! is the paper's late-materialization argument measured end to end.

use crate::{Args, Report};
use columnar::Column;
use engine::{execute, execute_unfused, Catalog, Expr, Plan, Table};
use sim::Device;

fn mib(bytes: u64) -> String {
    format!("{:.2} MiB", bytes as f64 / (1 << 20) as f64)
}

/// Build-side table: an i32 join key, a uniform i32 selectivity column,
/// and six i64 payload columns that ride the ticket when fused. The wide
/// payload is the GFTR case: Figure 12's payload-column sweep shows the
/// materialization cost scaling with width, and this is where deferring it
/// pays.
fn build_catalog(dev: &Device, n: usize, key_range: i32) -> Catalog {
    let mix = |i: usize, m: u64| ((i as u64).wrapping_mul(m) >> 5) as i64;
    let mut cat = Catalog::new();
    let payload =
        |m: u64| -> Column { Column::from_i64(dev, (0..n).map(|i| mix(i, m)).collect(), "f_pay") };
    cat.insert(Table::new(
        "fact",
        vec![
            (
                "f_key",
                Column::from_i32(
                    dev,
                    (0..n)
                        .map(|i| (mix(i, 2654435761) % key_range as i64) as i32)
                        .collect(),
                    "f_key",
                ),
            ),
            (
                "f_sel",
                Column::from_i32(
                    dev,
                    (0..n)
                        .map(|i| (mix(i, 0x9e3779b97f4a7c15) % 1000) as i32)
                        .collect(),
                    "f_sel",
                ),
            ),
            ("f_a", payload(0xff51afd7ed558ccd)),
            ("f_b", payload(0xc4ceb9fe1a85ec53)),
            ("f_c", payload(0xd6e8feb86659fd93)),
            ("f_d", payload(0xa24baed4963ee407)),
            ("f_e", payload(0x9fb21c651e98df25)),
            ("f_f", payload(0x3c79ac492ba7b653)),
        ],
    ));
    cat.insert(Table::new(
        "dim",
        vec![
            (
                "d_key",
                Column::from_i32(dev, (0..key_range).collect(), "d_key"),
            ),
            (
                "d_val",
                Column::from_i64(dev, (0..key_range as i64).map(|i| i * 3).collect(), "d_val"),
            ),
        ],
    ));
    cat
}

/// The measured chain: filter the fact table to ~`sel_pct`% of its rows,
/// derive one computed column, pass the wide payloads through, then join
/// against the dimension table.
fn chain(threshold: i64) -> Plan {
    Plan::scan("fact")
        .filter(Expr::col("f_sel").lt(Expr::lit(threshold)))
        .project(vec![
            ("k", Expr::col("f_key")),
            ("score", Expr::col("f_a").add(Expr::col("f_b"))),
            ("pa", Expr::col("f_a")),
            ("pb", Expr::col("f_b")),
            ("pc", Expr::col("f_c")),
            ("pd", Expr::col("f_d")),
            ("pe", Expr::col("f_e")),
            ("pf", Expr::col("f_f")),
        ])
        .join(Plan::scan("dim"), "k", "d_key")
}

struct RunCost {
    dram_bytes: u64,
    cycles: f64,
    launches: u64,
    rows: usize,
}

fn measure(args: &Args, n: usize, key_range: i32, threshold: i64, fused: bool) -> RunCost {
    // Fresh device per run: the memory ledger and counters start clean.
    let dev = args.device();
    let cat = build_catalog(&dev, n, key_range);
    let plan = chain(threshold);
    let before = dev.counters();
    let out = if fused {
        execute(&dev, &cat, &plan)
    } else {
        execute_unfused(&dev, &cat, &plan)
    }
    .expect("ablation plan binds");
    let d = dev.counters().delta_since(&before);
    if fused && threshold == 100 && args.explain_enabled() {
        args.record_explain(
            "ablation_fusion fused chain (10% selectivity)",
            &engine::QueryExplain::from_stats(dev.config(), &out.stats),
        );
    }
    if !fused && threshold == 100 && args.explain_enabled() {
        args.record_explain(
            "ablation_fusion unfused chain (10% selectivity)",
            &engine::QueryExplain::from_stats(dev.config(), &out.stats),
        );
    }
    RunCost {
        dram_bytes: d.dram_read_bytes + d.dram_write_bytes,
        cycles: d.cycles,
        launches: d.kernel_launches,
        rows: out.table.num_rows(),
    }
}

/// Run the experiment.
pub fn run(args: &Args) -> Report {
    let mut report = Report::new(
        "ablation_fusion",
        "Operator fusion + GFTR tickets vs full materialization",
        args,
    );
    let n = args.tuples();
    let key_range = (n / 4).max(64) as i32;
    println!(
        "Fusion ablation — Filter→Project→Join, {} fact rows, {} dim rows ({})\n",
        n, key_range, report.device
    );
    println!(
        "{:<6} {:>14} {:>14} {:>8} {:>12} {:>12} {:>8} {:>8}",
        "sel%",
        "unfused DRAM",
        "fused DRAM",
        "saved%",
        "unfused cyc",
        "fused cyc",
        "cyc sv%",
        "launches"
    );

    let mut at_ten = None;
    for sel_pct in [1u32, 5, 10, 25, 50, 90] {
        // f_sel is uniform over [0, 1000): the threshold IS the per-mille
        // selectivity.
        let threshold = (sel_pct * 10) as i64;
        let fused = measure(args, n, key_range, threshold, true);
        let unfused = measure(args, n, key_range, threshold, false);
        assert_eq!(
            fused.rows, unfused.rows,
            "fused and unfused plans must agree on the result"
        );
        let dram_saved = 100.0 * (1.0 - fused.dram_bytes as f64 / unfused.dram_bytes as f64);
        let cyc_saved = 100.0 * (1.0 - fused.cycles / unfused.cycles);
        println!(
            "{:<6} {:>14} {:>14} {:>7.1}% {:>12.3e} {:>12.3e} {:>7.1}% {:>3} vs {:<3}",
            sel_pct,
            mib(unfused.dram_bytes),
            mib(fused.dram_bytes),
            dram_saved,
            unfused.cycles,
            fused.cycles,
            cyc_saved,
            fused.launches,
            unfused.launches,
        );
        report.push(serde_json::json!({
            "selectivity_pct": sel_pct,
            "rows_out": fused.rows,
            "fused_dram_bytes": fused.dram_bytes,
            "unfused_dram_bytes": unfused.dram_bytes,
            "dram_saved_pct": dram_saved,
            "fused_cycles": fused.cycles,
            "unfused_cycles": unfused.cycles,
            "cycles_saved_pct": cyc_saved,
            "fused_launches": fused.launches,
            "unfused_launches": unfused.launches,
        }));
        if sel_pct == 10 {
            at_ten = Some((dram_saved, cyc_saved, fused.launches, unfused.launches));
        }
    }

    let (dram_saved, cyc_saved, fl, ul) = at_ten.expect("sweep includes 10%");
    report.finding(format!(
        "at 10% selectivity the fused Filter→Project→Join chain moves {dram_saved:.1}% \
         fewer DRAM bytes and spends {cyc_saved:.1}% fewer cycles than the fully \
         materialized plan, in {fl} kernel launches vs {ul}"
    ));
    assert!(
        dram_saved >= 20.0,
        "fusion must save at least 20% DRAM bytes at 10% selectivity (got {dram_saved:.1}%)"
    );
    assert!(
        fl < ul,
        "the fused plan must launch strictly fewer kernels ({fl} vs {ul})"
    );
    report.finish(args);
    report
}
