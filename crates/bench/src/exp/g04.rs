//! G4 (SIGMOD extension): join + grouped-aggregation pipelines — the shape
//! of TPC-H Q18 (orders ⋈ lineitem, then SUM(quantity) per order). Compares
//! join-algorithm × aggregation-algorithm combinations end to end.

use crate::{mtps, Args, Report};
use gpu_join::pipeline::{join_then_group_by, GroupKey, PipelineSpec};
use groupby::{AggFn, GroupByAlgorithm};
use joins::Algorithm;
use workloads::JoinWorkload;

/// Run the experiment.
pub fn run(args: &Args) -> Report {
    let mut report = Report::new("g04", "Join + grouped aggregation pipelines", args);
    let dev = args.device();
    let n = args.tuples();
    let w = JoinWorkload {
        s_tuples: n * 2,
        ..JoinWorkload::wide(n)
    };
    println!(
        "G4 — Q18-shaped pipeline: {} ⋈ {} then SUM per key ({})\n",
        w.r_tuples, w.s_tuples, report.device
    );
    println!(
        "{:<12} {:<10} {:>12} {:>12} {:>12}",
        "join", "groupby", "join time", "agg time", "M rows/s"
    );

    let group_algs = [
        GroupByAlgorithm::HashGlobal,
        GroupByAlgorithm::SortGftr,
        GroupByAlgorithm::PartitionedGftr,
    ];
    let mut best = (String::new(), f64::INFINITY);
    for join_alg in [Algorithm::PhjUm, Algorithm::PhjOm, Algorithm::SmjOm] {
        for group_alg in group_algs {
            let (r, s) = w.generate(&dev);
            let out = join_then_group_by(
                &dev,
                &r,
                &s,
                &PipelineSpec::new(
                    join_alg,
                    GroupKey::JoinKey,
                    group_alg,
                    &[AggFn::Sum, AggFn::Sum, AggFn::Sum, AggFn::Sum],
                ),
            );
            let total = out.total_time();
            let tput = mtps(w.total_tuples(), total);
            println!(
                "{:<12} {:<10} {:>12} {:>12} {:>12.1}",
                join_alg.name(),
                group_alg.name(),
                out.join_stats.phases.total().to_string(),
                out.groups.stats.phases.total().to_string(),
                tput
            );
            let label = format!("{}+{}", join_alg.name(), group_alg.name());
            if total.secs() < best.1 {
                best = (label.clone(), total.secs());
            }
            report.push(serde_json::json!({
                "join": join_alg.name(),
                "groupby": group_alg.name(),
                "join_s": out.join_stats.phases.total().secs(),
                "agg_s": out.groups.stats.phases.total().secs(),
                "mtps": tput,
                "groups": out.groups.len(),
            }));
        }
    }
    println!();
    report.finding(format!("fastest pipeline: {}", best.0));
    report.finish(args);
    report
}
