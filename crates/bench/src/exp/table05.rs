//! Table 5: peak device-memory usage per implementation per type mix —
//! the empirical counterpart of the Section 4.4 analysis. The optimized
//! (GFTR) implementations never use more memory than their GFUR
//! counterparts.

use crate::exp::run_algorithms;
use crate::{gb, Args, Report};
use columnar::DType;
use joins::{Algorithm, JoinConfig};
use workloads::JoinWorkload;

/// Run the experiment.
pub fn run(args: &Args) -> Report {
    let mut report = Report::new("table05", "Memory usage", args);
    let dev = args.device();
    let n = args.tuples();
    println!(
        "Table 5 — peak memory, |R| = |S| = {}, 2 payload columns each ({})\n",
        n, report.device
    );
    let combos = [
        (DType::I32, DType::I32, "4B Key + 4B Payload"),
        (DType::I32, DType::I64, "4B Key + 8B Payload"),
        (DType::I64, DType::I64, "8B Key + 8B Payload"),
    ];
    print!("{:<10}", "");
    for (_, _, label) in &combos {
        print!(" {:>22}", label);
    }
    println!();

    let mut peaks = vec![vec![0u64; combos.len()]; Algorithm::GPU_VARIANTS.len()];
    for (ci, (key, payload, _)) in combos.iter().enumerate() {
        let w = JoinWorkload {
            r_tuples: n,
            s_tuples: n,
            key_type: *key,
            r_payloads: vec![*payload; 2],
            s_payloads: vec![*payload; 2],
            ..JoinWorkload::narrow(n)
        };
        let results = run_algorithms(&dev, &w, &Algorithm::GPU_VARIANTS, &JoinConfig::default());
        for (ai, (_, stats)) in results.iter().enumerate() {
            peaks[ai][ci] = stats.peak_mem_bytes;
        }
    }
    for (ai, alg) in Algorithm::GPU_VARIANTS.iter().enumerate() {
        print!("{:<10}", alg.name());
        for p in &peaks[ai] {
            print!(" {:>22}", gb(*p));
        }
        println!();
        report.push(serde_json::json!({
            "algorithm": alg.name(),
            "peak_4b4b": peaks[ai][0],
            "peak_4b8b": peaks[ai][1],
            "peak_8b8b": peaks[ai][2],
        }));
    }
    println!();

    let idx = |a: Algorithm| {
        Algorithm::GPU_VARIANTS
            .iter()
            .position(|&x| x == a)
            .unwrap()
    };
    let phj_ok = (0..combos.len())
        .all(|c| peaks[idx(Algorithm::PhjOm)][c] <= peaks[idx(Algorithm::PhjUm)][c]);
    report.finding(format!(
        "PHJ-OM uses no more memory than PHJ-UM in every type mix: {phj_ok} \
         (paper: yes — the bucket pool's fragmentation costs PHJ-UM 10-20%)"
    ));
    let smj_worst = (0..combos.len())
        .map(|c| peaks[idx(Algorithm::SmjOm)][c] as f64 / peaks[idx(Algorithm::SmjUm)][c] as f64)
        .fold(0.0f64, f64::max);
    report.finding(format!(
        "SMJ-OM stays within {smj_worst:.2}x of SMJ-UM's footprint across the mixes \
         (paper: equal or lower — 9.5/15/18 GB vs 11/15/20 GB)"
    ));
    report.finish(args);
    report
}
