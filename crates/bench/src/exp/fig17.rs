//! Figure 17 / Table 6: the five TPC-H / TPC-DS join extracts, run with
//! 4-byte and 8-byte key variants. The scale flag maps onto the paper's
//! SF10/SF100 row counts: `--scale 27` reproduces them 1:1, the default 22
//! runs everything at 1/32 of the paper's sizes.

use crate::exp::{breakdown_row, print_breakdown_header};
use crate::{Args, Report};
use columnar::DType;
use joins::Algorithm;
use workloads::tpc::{generate, TpcJoinId};

/// Run the experiment.
pub fn run(args: &Args) -> Report {
    let mut report = Report::new("fig17", "Joins from TPC-H and TPC-DS benchmarks", args);
    let dev = args.device();
    let scale = (args.tuples() as f64 / (1u64 << 27) as f64).min(1.0);
    let mut phj_om_near_best = 0usize;
    let mut cases = 0usize;
    for key_type in [DType::I32, DType::I64] {
        println!(
            "\nFigure 17{} — keys {}, non-keys 8B, scale {:.4} of SF10/SF100 ({})",
            if key_type == DType::I32 { "a" } else { "b" },
            key_type,
            scale,
            report.device
        );
        for id in TpcJoinId::ALL {
            // J5's output explodes 12.5x; run it two scale steps smaller.
            let s = if id == TpcJoinId::J5 {
                scale / 4.0
            } else {
                scale
            };
            let inst = generate(&dev, id, s, key_type);
            println!(
                "\n  {} ({} {}): |R| = {}, |S| = {}",
                inst.spec.id,
                inst.spec.benchmark,
                inst.spec.query,
                inst.r.len(),
                inst.s.len()
            );
            print_breakdown_header();
            let mut best = (Algorithm::PhjOm, f64::INFINITY);
            let mut phj_om_t = f64::INFINITY;
            for alg in Algorithm::GPU_VARIANTS {
                let out = joins::run_join(&dev, alg, &inst.r, &inst.s, &inst.config);
                assert_eq!(out.len(), inst.expected_out, "{id}: wrong cardinality");
                let mut row = breakdown_row(alg.name(), &out.stats);
                row["join"] = serde_json::json!(inst.spec.id);
                row["key_type"] = serde_json::json!(key_type.label());
                let t = out.stats.phases.total().secs();
                if t < best.1 {
                    best = (alg, t);
                }
                if alg == Algorithm::PhjOm {
                    phj_om_t = t;
                }
                report.push(row);
            }
            cases += 1;
            if phj_om_t <= best.1 * 1.1 {
                phj_om_near_best += 1;
            }
            println!("  best: {}", best.0.name());
        }
    }
    println!();
    report.finding(format!(
        "PHJ-OM is within 10% of the best implementation on {phj_om_near_best}/{cases} TPC \
         join cases (paper: 'PHJ-OM performs consistently well for all evaluated joins')"
    ));
    report.finish(args);
    report
}
