//! M3 (admission): scheduling policy, admission control and plan caching
//! on the serving path.
//!
//! Three steps, all on the simulated clock and fully deterministic:
//!
//! 1. **Policy sweep** — the m02 open-loop mix (Q18/Q3/Q1 shapes, seeded
//!    exponential arrivals) replayed under FIFO (Serial), shortest-job
//!    first, and SJF with aging at offered loads up to 1.25x the
//!    calibrated capacity. Past saturation SJF must cut the short class's
//!    (Q1) p99 strictly below FIFO's while completing the same queries —
//!    the latency win is scheduling, not shedding.
//! 2. **Admission control** — a same-instant burst against two-fifths
//!    budgets and a one-slot waiting room, plus doomed arrivals the
//!    predicted-memory gate refuses: completed + shed + rejected must add
//!    up to the offered arrivals, with each outcome in its own per-class
//!    metrics family.
//! 3. **Plan cache** — steady-state repeat traffic through
//!    [`engine::PlanCache`] at a capacity that fits the mix and one that
//!    thrashes, reporting hit/miss/eviction counts and recording one
//!    cache-hit EXPLAIN with its provenance line under `--explain`.

use crate::{Args, Report};
use engine::demo::{q18_like, q1_like, q3_like, tpch_mini};
use engine::scheduler::{OpenQuery, Policy, QuerySpec, ServingConfig};
use engine::{EngineError, Plan, PlanCache, QueryExplain};
use sim::SimTime;

/// Arrivals per offered-load step (same regime as `m02`).
const ARRIVALS_PER_STEP: usize = 24;

/// Offered load as a fraction of calibrated capacity: the policy contrast
/// lives at and past saturation.
const RHO_SWEEP: [f64; 3] = [0.75, 1.0, 1.25];

/// The demo mix, cycled across arrivals (same rotation as `m01`/`m02`):
/// q18 is the long class, q1 the short one.
fn mix(i: usize) -> (&'static str, Plan) {
    match i % 3 {
        0 => ("q18", q18_like()),
        1 => ("q3", q3_like()),
        _ => ("q1", q1_like()),
    }
}

/// `splitmix64` step — deterministic, platform-independent arrivals.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A uniform draw in `(0, 1]` (never 0, so `ln` is finite).
fn uniform(state: &mut u64) -> f64 {
    ((splitmix64(state) >> 11) + 1) as f64 / (1u64 << 53) as f64
}

/// One class's p99 end-to-end latency out of a metrics snapshot.
fn class_p99(snap: &sim::MetricsSnapshot, class: &str) -> f64 {
    snap.registry
        .histogram("query_latency_seconds", &[("class", class)])
        .expect("scheduler records per-class latency histograms")
        .quantile(0.99)
}

fn completed(snap: &sim::MetricsSnapshot, class: &str) -> u64 {
    snap.registry
        .counter("query_completed_total", &[("class", class)])
}

/// Per-query lifecycle timestamps off the reports — the request-scoped
/// observability record each JSON row carries.
fn lifecycle_json(
    reports: &[engine::scheduler::QueryReport],
    class_of: impl Fn(usize) -> &'static str,
) -> Vec<serde_json::Value> {
    reports
        .iter()
        .enumerate()
        .map(|(i, r)| {
            let outcome = match &r.result {
                Ok(_) => "completed",
                Err(EngineError::QueueShed { .. }) => "shed",
                Err(EngineError::AdmissionRejected { .. }) => "rejected",
                Err(_) => "failed",
            };
            serde_json::json!({
                "query": r.query, "class": class_of(i), "outcome": outcome,
                "arrival_s": r.arrival.secs(), "admitted_s": r.admitted.secs(),
                "started_s": r.started.secs(), "completed_s": r.completion.secs(),
                "queue_wait_s": r.queue_wait().secs(),
            })
        })
        .collect()
}

/// Run the experiment.
pub fn run(args: &Args) -> Report {
    let mut report = Report::new(
        "m03_admission",
        "Serving control: policy sweep past saturation, admission shedding, plan cache",
        args,
    );
    let orders = args.tuples() / 16;

    // -- Calibration: solo-Serial service time per mix class ---------------
    let solo_busy: Vec<f64> = (0..3)
        .map(|i| {
            let dev = args.device();
            let catalog = tpch_mini(&dev, orders, 99);
            let (_, plan) = mix(i);
            let reports =
                engine::run_queries(&dev, &catalog, vec![QuerySpec::new(plan)], Policy::Serial);
            assert!(reports[0].result.is_ok(), "solo demo query must run");
            reports[0].busy.secs()
        })
        .collect();
    let mean_service = solo_busy.iter().sum::<f64>() / solo_busy.len() as f64;
    let capacity_qps = 1.0 / mean_service;
    println!(
        "M3 — serving control over the demo catalog, {} orders / ~{} lineitems ({})",
        orders,
        orders * 4,
        report.device
    );
    println!(
        "calibrated mix service time {:.3}ms (q18 {:.3}ms / q3 {:.3}ms / q1 {:.3}ms) \
         => capacity ~{:.0} q/s\n",
        mean_service * 1e3,
        solo_busy[0] * 1e3,
        solo_busy[1] * 1e3,
        solo_busy[2] * 1e3,
        capacity_qps
    );

    // -- Step 1: policy sweep over offered load ----------------------------
    let policies: [(&str, Policy); 3] = [
        ("fifo", Policy::Serial),
        ("sjf", Policy::Sjf),
        ("sjf_aging", Policy::SjfAging),
    ];
    println!(
        "{:<6} {:<10} {:>10} {:>12} {:>12} {:>12} {:>12}",
        "rho", "policy", "completed", "achieved", "q18 p99", "q3 p99", "q1 p99"
    );
    // (rho, fifo q1 p99, sjf q1 p99, fifo completed, sjf completed)
    let mut contrast: Vec<(f64, f64, f64, u64, u64)> = Vec::new();
    for (step, &rho) in RHO_SWEEP.iter().enumerate() {
        let lambda = rho * capacity_qps;
        // One seeded arrival schedule per rho, shared by every policy: the
        // comparison is apples-to-apples down to the last tick.
        let mut rng = 0x6d30_335f_6164_6d31_u64 ^ (step as u64); // "m03_adm1"
        let mut at = 0.0f64;
        let offsets: Vec<f64> = (0..ARRIVALS_PER_STEP)
            .map(|_| {
                at += -uniform(&mut rng).ln() / lambda;
                at
            })
            .collect();

        let mut q1_p99s = (0.0f64, 0.0f64);
        let mut counts = (0u64, 0u64);
        for &(label, policy) in &policies {
            // Fresh device and catalog per run: cumulative histograms, so a
            // clean registry is what makes each run's quantiles its own.
            let dev = args.device();
            if !dev.metrics_enabled() {
                dev.enable_metrics(args.metrics_interval());
            }
            let catalog = tpch_mini(&dev, orders, 99);
            let t0 = dev.elapsed().secs();
            let arrivals: Vec<OpenQuery> = offsets
                .iter()
                .enumerate()
                .map(|(i, off)| {
                    let (class, plan) = mix(i);
                    OpenQuery::new(SimTime::from_secs(t0 + off), class, QuerySpec::new(plan))
                })
                .collect();
            let first_arrival = arrivals[0].at.secs();
            let reports = engine::run_open_loop(&dev, &catalog, arrivals, policy);
            assert!(
                reports.iter().all(|r| r.result.is_ok()),
                "unbounded queue: every request completes under {label}"
            );
            let snap = dev.metrics_snapshot().expect("metrics recorder is on");
            let done: u64 = ["q18", "q3", "q1"]
                .iter()
                .map(|c| completed(&snap, c))
                .sum();
            let span = reports
                .iter()
                .map(|r| r.completion.secs())
                .fold(0.0, f64::max)
                - first_arrival;
            let achieved_qps = done as f64 / span;
            let p99s: Vec<f64> = ["q18", "q3", "q1"]
                .iter()
                .map(|c| class_p99(&snap, c))
                .collect();
            println!(
                "{rho:<6} {label:<10} {done:>10} {achieved_qps:>8.1} q/s {:>10.2}ms {:>10.2}ms {:>10.2}ms",
                p99s[0] * 1e3,
                p99s[1] * 1e3,
                p99s[2] * 1e3
            );
            report.push(serde_json::json!({
                "sweep": "policy", "rho": rho, "policy": label,
                "queries": ARRIVALS_PER_STEP, "completed": done,
                "achieved_qps": achieved_qps,
                "q18_p99_s": p99s[0], "q3_p99_s": p99s[1], "q1_p99_s": p99s[2],
                "lifecycle": lifecycle_json(&reports, |i| mix(i).0),
            }));
            match label {
                "fifo" => {
                    q1_p99s.0 = p99s[2];
                    counts.0 = done;
                }
                "sjf" => {
                    q1_p99s.1 = p99s[2];
                    counts.1 = done;
                }
                _ => {}
            }
        }
        contrast.push((rho, q1_p99s.0, q1_p99s.1, counts.0, counts.1));
    }

    // The acceptance criterion, enforced: past saturation (rho = 1.25) SJF
    // beats FIFO on the short class's p99 strictly, at equal goodput.
    let sat = contrast.last().unwrap();
    assert!(
        sat.2 < sat.1,
        "at rho={} SJF q1 p99 ({:.3}ms) must be strictly below FIFO's ({:.3}ms)",
        sat.0,
        sat.2 * 1e3,
        sat.1 * 1e3
    );
    assert_eq!(sat.3, sat.4, "SJF must not trade goodput for latency");
    report.finding(format!(
        "past saturation (rho=1.25) SJF cuts the short class's p99 from {:.1}us (FIFO) \
         to {:.1}us ({:.1}x) at identical goodput ({} of {} completed)",
        sat.1 * 1e6,
        sat.2 * 1e6,
        sat.1 / sat.2.max(1e-12),
        sat.4,
        ARRIVALS_PER_STEP
    ));

    // -- Step 2: bounded queue + predicted-memory gate ---------------------
    let dev = args.device();
    if !dev.metrics_enabled() {
        dev.enable_metrics(args.metrics_interval());
    }
    let catalog = tpch_mini(&dev, orders, 99);
    let free = dev.mem_capacity() - dev.mem_report().current_bytes;
    let burst_budget = free * 2 / 5; // two reservations fit, a third cannot
    let tiny_budget = 4 << 10; // far below any demo plan's predicted peak
    let n_burst = 10usize;
    let n_doomed = 2usize;
    let t0 = SimTime::from_secs(dev.elapsed().secs());
    let mut arrivals: Vec<OpenQuery> = (0..n_burst)
        .map(|_| {
            OpenQuery::new(
                t0,
                "burst",
                QuerySpec::new(q3_like()).with_budget(burst_budget),
            )
        })
        .collect();
    arrivals.extend((0..n_doomed).map(|_| {
        OpenQuery::new(
            t0,
            "doomed",
            QuerySpec::new(q18_like()).with_budget(tiny_budget),
        )
    }));
    let serving = ServingConfig::new().with_total_depth(1).with_memory_gate();
    let reports = engine::run_open_loop_with(&dev, &catalog, arrivals, Policy::Sjf, &serving);
    let ok = reports.iter().filter(|r| r.result.is_ok()).count();
    let shed = reports
        .iter()
        .filter(|r| matches!(r.result, Err(EngineError::QueueShed { .. })))
        .count();
    let rejected = reports
        .iter()
        .filter(|r| matches!(r.result, Err(EngineError::AdmissionRejected { .. })))
        .count();
    assert_eq!(
        ok + shed + rejected,
        n_burst + n_doomed,
        "every arrival is completed, shed or rejected — nothing vanishes"
    );
    // Registration is sequential: two reservations admit, one waits in the
    // single queue slot, the rest of the burst sheds; the gate refuses both
    // doomed arrivals before they register.
    assert_eq!(ok, 3, "two admitted + one queued complete");
    assert_eq!(shed, n_burst - 3, "the burst overflow is shed");
    assert_eq!(rejected, n_doomed, "the memory gate refuses doomed queries");
    let snap = dev.metrics_snapshot().expect("metrics recorder is on");
    let m_done = snap
        .registry
        .counter("query_completed_total", &[("class", "burst")]);
    let m_shed = snap
        .registry
        .counter("query_shed_total", &[("class", "burst")]);
    let m_rejected = snap
        .registry
        .counter("query_rejected_total", &[("class", "doomed")]);
    assert_eq!(
        (m_done, m_shed, m_rejected),
        (3, 7, 2),
        "counters match outcomes"
    );
    println!(
        "\nadmission: {n_burst}-query burst against 2/5-of-memory budgets, queue depth 1, \
         memory gate on\n  completed {m_done}, shed {m_shed}, rejected {m_rejected} \
         (query_completed/shed/rejected_total)"
    );
    report.push(serde_json::json!({
        "sweep": "admission", "arrivals": n_burst + n_doomed, "queue_depth": 1,
        "completed": m_done, "shed": m_shed, "rejected": m_rejected,
        "lifecycle": lifecycle_json(&reports, |i| if i < n_burst { "burst" } else { "doomed" }),
    }));
    report.finding(format!(
        "a same-instant burst of {n_burst} against two-fifths budgets and a one-slot queue \
         completes 3, sheds {m_shed} with typed QueueShed, and the predicted-memory gate \
         rejects both doomed arrivals — counted in query_completed/shed/rejected_total"
    ));

    // -- Step 3: plan cache on repeat traffic ------------------------------
    let rounds = 4usize;
    println!(
        "\n{:<10} {:>6} {:>6} {:>10} {:>9}",
        "cache", "hits", "misses", "evictions", "hit rate"
    );
    for capacity in [4usize, 2] {
        let dev = args.device();
        if !dev.metrics_enabled() {
            dev.enable_metrics(args.metrics_interval());
        }
        let catalog = tpch_mini(&dev, orders, 99);
        let mut cache = PlanCache::new(capacity);
        for round in 0..rounds {
            for i in 0..3 {
                let (class, plan) = mix(i);
                let (out, info) = cache
                    .execute(&dev, &catalog, &plan)
                    .unwrap_or_else(|e| panic!("{class}: {e:?}"));
                if capacity == 4 && round == 1 && i == 0 {
                    // One cache-hit EXPLAIN with its provenance line.
                    args.record_explain(
                        "m03 q18 (plan cache hit)",
                        &QueryExplain::from_stats(dev.config(), &out.stats).with_cache(info),
                    );
                }
            }
        }
        let (hits, misses, evictions) = cache.stats();
        assert_eq!(
            hits + misses,
            (rounds * 3) as u64,
            "every execution is a hit or a miss"
        );
        if capacity == 4 {
            assert_eq!(
                (hits, misses, evictions),
                ((rounds as u64 - 1) * 3, 3, 0),
                "a cache that fits the mix misses only the cold round"
            );
        } else {
            assert_eq!(
                hits, 0,
                "LRU thrash: a 2-entry cache never hits a 3-plan cycle"
            );
        }
        let hit_rate = hits as f64 / (hits + misses) as f64;
        println!(
            "{:<10} {hits:>6} {misses:>6} {evictions:>10} {:>8.0}%",
            format!("cap {capacity}"),
            hit_rate * 100.0
        );
        report.push(serde_json::json!({
            "sweep": "plan_cache", "capacity": capacity, "rounds": rounds,
            "hits": hits, "misses": misses, "evictions": evictions,
            "hit_rate": hit_rate,
        }));
    }
    report.finding(format!(
        "a plan cache sized for the mix serves {} rounds of repeat traffic at 75% hit rate \
         (3 cold misses, 0 evictions), while an undersized 2-entry cache thrashes to 0% — \
         counts exported as plan_cache_hits/misses/evictions_total",
        rounds
    ));

    report.finish(args);
    report
}
