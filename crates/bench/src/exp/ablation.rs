//! Ablations of the design choices DESIGN.md calls out:
//!
//! * radix fan-out for PHJ-OM (the paper's 15-16 bits at 2^27 tuples is the
//!   shared-memory sweet spot — too few bits overflow the shared-memory
//!   tables into block-nested loops, too many waste passes);
//! * domain-restricted sorting for SMJ-OM (when the optimizer knows keys lie
//!   in `0..|R|`, SORT-PAIRS can skip the constant high digits — the
//!   digit-skipping CUB performs);
//! * the GFTR/GFUR flexibility of the paper's PHJ implementation
//!   (Section 4.3: the same partitioned join can skip payload partitioning,
//!   which wins at low match ratios).

use crate::exp::run_algorithms;
use crate::{Args, Report};
use joins::{Algorithm, JoinConfig};
use primitives::{merge_join, sort_pairs_bits};
use workloads::JoinWorkload;

/// Ablation A1: PHJ-OM total time as a function of the radix fan-out.
pub fn radix_bits(args: &Args) -> Report {
    let mut report = Report::new("ablation_radix_bits", "PHJ-OM vs radix fan-out", args);
    let dev = args.device();
    let w = JoinWorkload {
        s_tuples: args.tuples() * 2,
        ..JoinWorkload::wide(args.tuples())
    };
    println!(
        "Ablation — PHJ-OM radix bits, |R| = {} ({})\n",
        w.r_tuples, report.device
    );
    println!(
        "{:<8} {:>12} {:>12} {:>12}",
        "bits", "transform", "match", "total"
    );
    let mut best = (0u32, f64::INFINITY);
    let auto_time;
    for bits in [4u32, 8, 12, 14, 16, 18] {
        let cfg = JoinConfig {
            radix_bits: Some(bits),
            ..JoinConfig::default()
        };
        let (_, stats) = run_algorithms(&dev, &w, &[Algorithm::PhjOm], &cfg)
            .pop()
            .expect("one result");
        println!(
            "{bits:<8} {:>12} {:>12} {:>12}",
            stats.phases.transform.to_string(),
            stats.phases.match_find.to_string(),
            stats.phases.total().to_string()
        );
        report.push(serde_json::json!({
            "bits": bits,
            "transform_s": stats.phases.transform.secs(),
            "match_s": stats.phases.match_find.secs(),
            "total_s": stats.phases.total().secs(),
        }));
        if stats.phases.total().secs() < best.1 {
            best = (bits, stats.phases.total().secs());
        }
    }
    {
        let (_, stats) = run_algorithms(&dev, &w, &[Algorithm::PhjOm], &JoinConfig::default())
            .pop()
            .expect("one result");
        auto_time = stats.phases.total().secs();
        println!(
            "{:<8} {:>12} {:>12} {:>12}",
            "auto",
            stats.phases.transform.to_string(),
            stats.phases.match_find.to_string(),
            stats.phases.total().to_string()
        );
    }
    println!();
    report.finding(format!(
        "best fan-out is {} bits; the shared-memory auto-choice lands within {:.2}x of it",
        best.0,
        auto_time / best.1
    ));
    report.finish(args);
    report
}

/// Ablation A2: domain-restricted sorting. With keys known to lie in
/// `0..|R|`, sorting `ceil(log2 |R|)` bits gives the same merge join with
/// fewer RADIX-PARTITION passes.
pub fn sort_bits(args: &Args) -> Report {
    let mut report = Report::new(
        "ablation_sort_bits",
        "Domain-restricted SORT-PAIRS for SMJ",
        args,
    );
    let dev = args.device();
    let n = args.tuples();
    let w = JoinWorkload::narrow(n);
    let (r, s) = w.generate(&dev);
    let domain_bits = usize::BITS - (n - 1).leading_zeros();
    println!(
        "Ablation — sort width for |R| = {n} (domain needs {domain_bits} bits) ({})\n",
        report.device
    );

    let mut rows = Vec::new();
    for (label, bits) in [("full 32-bit", 32u32), ("domain-restricted", domain_bits)] {
        let ids_r = dev.upload((0..r.len() as u32).collect::<Vec<u32>>(), "ab.ids");
        let ids_s = dev.upload((0..s.len() as u32).collect::<Vec<u32>>(), "ab.ids");
        dev.reset_stats();
        let (rk, _) = sort_pairs_bits(&dev, r.key().as_i32(), &ids_r, bits);
        let (sk, _) = sort_pairs_bits(&dev, s.key().as_i32(), &ids_s, bits);
        let m = merge_join(&dev, &rk, &sk, true);
        let t = dev.elapsed();
        println!("{label:<20} {:>12}   ({} matches)", t.to_string(), m.len());
        rows.push((label, t.secs(), m.len()));
        report.push(serde_json::json!({"sort": label, "bits": bits, "total_s": t.secs()}));
    }
    println!();
    assert_eq!(rows[0].2, rows[1].2, "restriction must not change results");
    report.finding(format!(
        "domain-restricted sorting is {:.2}x faster and produces identical matches",
        rows[0].1 / rows[1].1
    ));
    report.finish(args);
    report
}

/// Ablation A3: the same PHJ implementation flipping between GFTR and GFUR
/// across match ratios — the Section 4.3 flexibility argument.
pub fn phj_patterns(args: &Args) -> Report {
    let mut report = Report::new(
        "ablation_phj_patterns",
        "PHJ-OM pattern choice (GFTR vs GFUR) vs match ratio",
        args,
    );
    let dev = args.device();
    let n = args.tuples();
    println!(
        "Ablation — one PHJ implementation, two patterns, |R| = |S| = {n} ({})\n",
        report.device
    );
    println!(
        "{:<10} {:>12} {:>12} {:>10}",
        "match %", "GFTR", "GFUR", "winner"
    );
    let mut crossover = None;
    for pct in [5.0f64, 15.0, 30.0, 60.0, 100.0] {
        let w = JoinWorkload {
            r_tuples: n,
            s_tuples: n,
            match_ratio: pct / 100.0,
            ..JoinWorkload::wide(n)
        };
        let results = run_algorithms(
            &dev,
            &w,
            &[Algorithm::PhjOm, Algorithm::PhjOmGfur],
            &JoinConfig::default(),
        );
        let gftr = results[0].1.phases.total();
        let gfur = results[1].1.phases.total();
        let winner = if gftr < gfur { "GFTR" } else { "GFUR" };
        if winner == "GFTR" && crossover.is_none() {
            crossover = Some(pct);
        }
        println!(
            "{pct:<10} {:>12} {:>12} {:>10}",
            gftr.to_string(),
            gfur.to_string(),
            winner
        );
        report.push(serde_json::json!({
            "match_pct": pct, "gftr_s": gftr.secs(), "gfur_s": gfur.secs(),
        }));
    }
    println!();
    report.finding(match crossover {
        Some(pct) => format!(
            "the GFTR pattern starts paying off at ~{pct}% match ratio; below that the \
             implementation should skip payload partitioning (Section 4.3)"
        ),
        None => "GFUR won at every match ratio — check the cache regime".to_string(),
    });
    report.finish(args);
    report
}
