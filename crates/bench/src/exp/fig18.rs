//! Figure 18: the decision trees, validated against measured winners over a
//! grid of workload shapes. For each grid point we run all four GPU
//! implementations and check how close the tree's pick lands to the best.

use crate::exp::run_algorithms;
use crate::{Args, Report};
use columnar::DType;
use heuristics::{choose_join, choose_smj, profile_of};
use joins::{Algorithm, JoinConfig};
use workloads::JoinWorkload;

/// Run the experiment.
pub fn run(args: &Args) -> Report {
    let mut report = Report::new("fig18", "Decision trees vs measured winners", args);
    let dev = args.device();
    let n = args.tuples();
    println!(
        "Figure 18 — decision-tree validation over a workload grid, |R| = {} ({})\n",
        n, report.device
    );
    println!(
        "{:<42} {:>9} {:>9} {:>9} {:>8}",
        "workload", "predicted", "best", "gap", "ok?"
    );

    let mut within = 0usize;
    let mut total = 0usize;
    for wide in [false, true] {
        for &match_ratio in &[1.0, 0.1] {
            for &zipf in &[0.0, 1.5] {
                for &key in &[DType::I32, DType::I64] {
                    let cols = if wide { 3 } else { 1 };
                    let w = JoinWorkload {
                        r_tuples: n,
                        s_tuples: n,
                        key_type: key,
                        r_payloads: vec![key; cols],
                        s_payloads: vec![key; cols],
                        match_ratio,
                        zipf,
                        ..JoinWorkload::narrow(n)
                    };
                    let results =
                        run_algorithms(&dev, &w, &Algorithm::GPU_VARIANTS, &JoinConfig::default());
                    let (best, best_t) = results
                        .iter()
                        .map(|(a, s)| (*a, s.phases.total().secs()))
                        .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
                        .unwrap();
                    let (r, s) = w.generate(&dev);
                    let profile = profile_of(&r, &s, match_ratio, zipf, dev.config().l2_bytes);
                    let rec = choose_join(&profile);
                    let rec_t = results
                        .iter()
                        .find(|(a, _)| *a == rec.algorithm)
                        .unwrap()
                        .1
                        .phases
                        .total()
                        .secs();
                    let gap = rec_t / best_t;
                    let ok = gap <= 1.35;
                    within += ok as usize;
                    total += 1;
                    let label = format!(
                        "{} match={match_ratio} zipf={zipf} key={key}",
                        if wide { "wide(3)" } else { "narrow" },
                    );
                    println!(
                        "{:<42} {:>9} {:>9} {:>8.2}x {:>8}",
                        label,
                        rec.algorithm.name(),
                        best.name(),
                        gap,
                        if ok { "yes" } else { "NO" }
                    );
                    report.push(serde_json::json!({
                        "workload": label,
                        "predicted": rec.algorithm.name(),
                        "best": best.name(),
                        "gap": gap,
                        "smj_subtree": choose_smj(&profile).algorithm.name(),
                    }));
                }
            }
        }
    }
    println!();
    report.finding(format!(
        "the decision tree lands within 1.35x of the measured best on {within}/{total} \
         grid points"
    ));
    report.finish(args);
    report
}
