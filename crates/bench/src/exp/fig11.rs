//! Figure 11: effect of the |R|/|S| size ratio on wide joins (|S| fixed).

use crate::exp::run_algorithms;
use crate::{mtps, Args, Report};
use joins::{Algorithm, JoinConfig};
use sim::SimTime;
use workloads::JoinWorkload;

/// Run the experiment.
pub fn run(args: &Args) -> Report {
    let mut report = Report::new("fig11", "Effect of |R|/|S|", args);
    let dev = args.device();
    let s_tuples = args.tuples();
    println!(
        "Figure 11 — wide join, |S| = {} fixed, |R|/|S| swept ({})\n",
        s_tuples, report.device
    );
    print!("{:<10}", "|R|/|S|");
    for alg in Algorithm::GPU_VARIANTS {
        print!(" {:>10}", alg.name());
    }
    println!("  (M tuples/s)");

    let mut om_always_ahead = true;
    for denom in [8usize, 4, 2, 1] {
        let w = JoinWorkload {
            r_tuples: s_tuples / denom,
            s_tuples,
            ..JoinWorkload::wide(s_tuples / denom)
        };
        let results = run_algorithms(&dev, &w, &Algorithm::GPU_VARIANTS, &JoinConfig::default());
        print!("1/{denom:<8}");
        let mut row = serde_json::json!({"r_over_s": 1.0 / denom as f64});
        for (alg, stats) in &results {
            let tput = mtps(w.total_tuples(), stats.phases.total());
            print!(" {tput:>10.1}");
            row[alg.name()] = serde_json::json!(tput);
        }
        println!();
        let t = |a: Algorithm| {
            results
                .iter()
                .find(|(x, _)| *x == a)
                .unwrap()
                .1
                .phases
                .total()
                .secs()
        };
        if t(Algorithm::PhjOm) > t(Algorithm::PhjUm) {
            om_always_ahead = false;
        }
        report.push(row);
    }
    println!();
    report.finding(format!(
        "*-OM outperform *-UM across all size ratios: {} (paper: yes, even when R is small)",
        om_always_ahead
    ));
    let _ = SimTime::ZERO;
    report.finish(args);
    report
}
