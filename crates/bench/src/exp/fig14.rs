//! Figure 14: effect of foreign-key skewness (Zipf factor sweep). The
//! bucket-chain partitioner (PHJ-UM) collapses past Zipf ≈ 1 under atomic
//! serialization; the stable RADIX-PARTITION (PHJ-OM, SMJ-*) stays flat.

use crate::exp::{run_algorithms, total_of};
use crate::{mtps, Args, Report};
use joins::{Algorithm, JoinConfig};
use workloads::JoinWorkload;

/// Run the experiment.
pub fn run(args: &Args) -> Report {
    let mut report = Report::new("fig14", "Effect of foreign key skewness", args);
    let dev = args.device();
    let n = args.tuples();
    println!(
        "Figure 14 — wide join, |R| = |S| = {}, Zipf factor swept ({})\n",
        n, report.device
    );
    print!("{:<8}", "zipf");
    for alg in Algorithm::GPU_VARIANTS {
        print!(" {:>10}", alg.name());
    }
    println!("  (M tuples/s)");

    let mut phj_um_flat = (0.0f64, 0.0f64); // (t at zipf 0, t at max zipf)
    let mut phj_om_flat = (0.0f64, 0.0f64);
    let mut om_always_best = true;
    for zipf in [0.0f64, 0.5, 0.75, 1.0, 1.25, 1.5, 1.75] {
        let w = JoinWorkload {
            r_tuples: n,
            s_tuples: n,
            zipf,
            ..JoinWorkload::wide(n)
        };
        let results = run_algorithms(&dev, &w, &Algorithm::GPU_VARIANTS, &JoinConfig::default());
        print!("{zipf:<8}");
        let mut row = serde_json::json!({"zipf": zipf});
        for (alg, stats) in &results {
            let tput = mtps(w.total_tuples(), stats.phases.total());
            print!(" {tput:>10.1}");
            row[alg.name()] = serde_json::json!(tput);
        }
        println!();
        let um = total_of(&results, Algorithm::PhjUm);
        let om = total_of(&results, Algorithm::PhjOm);
        if zipf == 0.0 {
            phj_um_flat.0 = um;
            phj_om_flat.0 = om;
        }
        phj_um_flat.1 = um;
        phj_om_flat.1 = om;
        if results
            .iter()
            .any(|(a, s)| *a != Algorithm::PhjOm && s.phases.total().secs() < om)
        {
            om_always_best = false;
        }
        report.push(row);
    }
    println!();
    report.finding(format!(
        "PHJ-UM slows down {:.1}x from Zipf 0 to 1.75 (paper: bucket chaining is \
         'particularly sensitive to data skewness')",
        phj_um_flat.1 / phj_um_flat.0
    ));
    report.finding(format!(
        "PHJ-OM stays within {:.2}x of its uniform performance across the sweep \
         (paper: RADIX-PARTITION is distribution-robust)",
        phj_om_flat.1 / phj_om_flat.0
    ));
    report.finding(format!(
        "PHJ-OM is the best implementation at every Zipf factor: {om_always_best} (paper: yes)"
    ));
    report.finish(args);
    report
}
