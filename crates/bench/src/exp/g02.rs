//! G2 (SIGMOD extension): grouped aggregation under key skew. The global
//! hash table serializes its atomics on the hottest group; the partitioned
//! and sort-based variants are distribution-robust — the aggregation analog
//! of Figure 14.

use crate::{mtps, Args, Report};
use groupby::{AggFn, GroupByAlgorithm, GroupByConfig};
use workloads::agg::AggWorkload;

/// Run the experiment.
pub fn run(args: &Args) -> Report {
    let mut report = Report::new("g02", "Grouped aggregation under key skew", args);
    let dev = args.device();
    let n = args.tuples();
    println!(
        "G2 — SUM over one column, {} rows, 2^16 groups, Zipf swept ({})\n",
        n, report.device
    );
    print!("{:<8}", "zipf");
    for alg in GroupByAlgorithm::ALL {
        print!(" {:>10}", alg.name());
    }
    println!("  (M rows/s)");

    let mut hash = (0.0f64, 0.0f64);
    let mut part = (0.0f64, 0.0f64);
    for zipf in [0.0f64, 0.5, 1.0, 1.5, 1.75] {
        let w = AggWorkload {
            zipf,
            ..AggWorkload::uniform(n, 1 << 16)
        };
        let input = w.generate(&dev);
        print!("{zipf:<8}");
        let mut row = serde_json::json!({"zipf": zipf});
        for alg in GroupByAlgorithm::ALL {
            let out =
                groupby::run_group_by(&dev, alg, &input, &[AggFn::Sum], &GroupByConfig::default());
            let tput = mtps(n, out.stats.phases.total());
            print!(" {tput:>10.1}");
            row[alg.name()] = serde_json::json!(tput);
            if alg == GroupByAlgorithm::HashGlobal {
                if zipf == 0.0 {
                    hash.0 = tput;
                }
                hash.1 = tput;
            }
            if alg == GroupByAlgorithm::PartitionedGftr {
                if zipf == 0.0 {
                    part.0 = tput;
                }
                part.1 = tput;
            }
        }
        println!();
        report.push(row);
    }
    println!();
    report.finding(format!(
        "hash aggregation loses {:.1}x of its throughput under Zipf 1.75 (atomic hotspot)",
        hash.0 / hash.1
    ));
    report.finding(format!(
        "partitioned aggregation stays within {:.2}x of its uniform throughput",
        part.0 / part.1
    ));
    report.finish(args);
    report
}
