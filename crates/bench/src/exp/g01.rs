//! G1 (SIGMOD extension): grouped-aggregation throughput vs group count.
//! Few groups: the global hash table is L2-resident and unbeatable. Many
//! groups: its random misses dominate and the transform-based variants win.

use crate::{mtps, Args, Report};
use groupby::{AggFn, GroupByAlgorithm, GroupByConfig};
use sim::SimTime;
use workloads::agg::AggWorkload;

/// Run the experiment.
pub fn run(args: &Args) -> Report {
    let mut report = Report::new("g01", "Grouped aggregation vs number of groups", args);
    let dev = args.device();
    let n = args.tuples();
    println!(
        "G1 — SUM over one column, {} rows, group count swept ({})\n",
        n, report.device
    );
    print!("{:<12}", "groups");
    for alg in GroupByAlgorithm::ALL {
        print!(" {:>10}", alg.name());
    }
    println!("  (M rows/s)");

    let mut hash_small = 0.0;
    let mut hash_large = 0.0;
    let mut best_large = (GroupByAlgorithm::HashGlobal, 0.0f64);
    let sweep: Vec<usize> = (4..args.scale_log2.saturating_sub(1))
        .step_by(4)
        .map(|b| 1usize << b)
        .collect();
    for &groups in &sweep {
        let w = AggWorkload::uniform(n, groups);
        let input = w.generate(&dev);
        print!("{groups:<12}");
        let mut row = serde_json::json!({"groups": groups});
        for alg in GroupByAlgorithm::ALL {
            let out =
                groupby::run_group_by(&dev, alg, &input, &[AggFn::Sum], &GroupByConfig::default());
            let tput = mtps(n, out.stats.phases.total());
            print!(" {tput:>10.1}");
            row[alg.name()] = serde_json::json!(tput);
            if alg == GroupByAlgorithm::HashGlobal {
                if groups == sweep[0] {
                    hash_small = tput;
                }
                hash_large = tput;
            }
            if groups == *sweep.last().unwrap() && tput > best_large.1 {
                best_large = (alg, tput);
            }
        }
        println!();
        report.push(row);
    }
    println!();
    report.finding(format!(
        "the global hash aggregation slows down {:.1}x from {} to {} groups \
         (L2 residency lost)",
        hash_small / hash_large,
        sweep[0],
        sweep.last().unwrap()
    ));
    report.finding(format!(
        "at the largest group count the best variant is {}",
        best_large.0.name()
    ));
    let _ = SimTime::ZERO;
    report.finish(args);
    report
}
