//! Figure 1: time breakdown for join processing — the motivating
//! measurement. A PK relation joined with a 2x larger FK relation, two
//! payload columns per side; the state-of-the-art GFUR implementations
//! spend most of their time materializing (up to ~75% in the paper), and
//! the paper's optimized variants claw that back (up to 2.3x end to end).

use crate::exp::{breakdown_row, print_breakdown_header, run_algorithms, total_of};
use crate::{Args, Report};
use joins::{Algorithm, JoinConfig};
use workloads::JoinWorkload;

/// Run the experiment.
pub fn run(args: &Args) -> Report {
    let mut report = Report::new("fig01", "Time break-down for join processing", args);
    let dev = args.device();
    let w = JoinWorkload {
        s_tuples: args.tuples() * 2,
        ..JoinWorkload::wide(args.tuples())
    };
    println!(
        "Figure 1 — {} ⋈ {} tuples (1:2 sizes), 2 payload columns each, {}\n",
        w.r_tuples, w.s_tuples, report.device
    );

    let algorithms = [
        Algorithm::Nphj,
        Algorithm::SmjUm,
        Algorithm::PhjUm,
        Algorithm::SmjOm,
        Algorithm::PhjOm,
    ];
    print_breakdown_header();
    let results = run_algorithms(&dev, &w, &algorithms, &JoinConfig::default());
    for (alg, stats) in &results {
        report.push(breakdown_row(alg.name(), stats));
    }
    println!();

    let um_mat_frac = results
        .iter()
        .filter(|(a, _)| matches!(a, Algorithm::SmjUm | Algorithm::PhjUm))
        .map(|(_, s)| s.phases.materialize_fraction())
        .fold(0.0f64, f64::max);
    report.finding(format!(
        "materialization takes up to {:.0}% of the runtime of the GFUR implementations \
         (paper: up to 75%)",
        um_mat_frac * 100.0
    ));
    let speedup = total_of(&results, Algorithm::PhjUm) / total_of(&results, Algorithm::PhjOm);
    report.finding(format!(
        "PHJ-OM is {speedup:.2}x faster than PHJ-UM end to end (paper: up to 2.3x)"
    ));
    let nphj_vs = total_of(&results, Algorithm::Nphj) / total_of(&results, Algorithm::PhjOm);
    report.finding(format!(
        "PHJ-OM is {nphj_vs:.2}x faster than the non-partitioned hash join"
    ));
    report.finish(args);
    report
}
