//! M2 (serving): an open-loop serving benchmark over `sim::metrics`.
//!
//! Queries from the demo mix (Q18/Q3/Q1 shapes) *arrive* on the simulated
//! clock with seeded exponential inter-arrival gaps — an open-loop Poisson
//! process, so offered load is independent of how fast the device drains
//! it. The sweep walks offered load ρ from well below the calibrated
//! capacity to 1.5x beyond it and reports the latency-throughput curve:
//! per-class p50/p90/p99/max end-to-end latency, achieved throughput,
//! utilization, and the time-averaged number of queries in the system.
//!
//! Every latency statistic is read back from the device's metrics
//! subsystem (`query_latency_seconds{class=...}` histograms recorded by
//! `engine::scheduler`), not from ad-hoc bookkeeping — the bench exists to
//! exercise that path end to end. Arrivals, admission and service all run
//! on the simulated clock under the Serial (FIFO run-to-completion)
//! policy, so the whole curve is bit-identical across re-runs and
//! `host_threads` settings.

use crate::{Args, Report};
use engine::demo::{q18_like, q1_like, q3_like, tpch_mini};
use engine::scheduler::{OpenQuery, Policy, QuerySpec};
use engine::Plan;
use sim::SimTime;

/// Arrivals per offered-load step: enough for stable medians while keeping
/// the tail quantiles honest (p99 of 24 samples is the max by rank).
const ARRIVALS_PER_STEP: usize = 24;

/// Offered load as a fraction of calibrated capacity.
const RHO_SWEEP: [f64; 5] = [0.25, 0.5, 0.75, 1.0, 1.5];

/// The demo mix, cycled across arrivals (same rotation as `m01`).
fn mix(i: usize) -> (&'static str, Plan) {
    match i % 3 {
        0 => ("q18", q18_like()),
        1 => ("q3", q3_like()),
        _ => ("q1", q1_like()),
    }
}

/// `splitmix64` step — the standard 64-bit mixer; deterministic and
/// platform-independent, which is all the arrival process needs.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A uniform draw in `(0, 1]` (never 0, so `ln` is finite).
fn uniform(state: &mut u64) -> f64 {
    ((splitmix64(state) >> 11) + 1) as f64 / (1u64 << 53) as f64
}

/// Per-class latency summary pulled out of one metrics snapshot.
struct ClassStats {
    count: u64,
    mean_s: f64,
    p50_s: f64,
    p90_s: f64,
    p99_s: f64,
    max_s: f64,
}

fn class_stats(snap: &sim::MetricsSnapshot, class: &str) -> ClassStats {
    let h = snap
        .registry
        .histogram("query_latency_seconds", &[("class", class)])
        .expect("scheduler records per-class latency histograms");
    ClassStats {
        count: h.count(),
        mean_s: if h.count() == 0 {
            0.0
        } else {
            h.sum_scaled() / h.count() as f64
        },
        p50_s: h.quantile(0.50),
        p90_s: h.quantile(0.90),
        p99_s: h.quantile(0.99),
        max_s: h.max_scaled(),
    }
}

/// Run the experiment.
pub fn run(args: &Args) -> Report {
    let mut report = Report::new(
        "m02_serving",
        "Open-loop serving: offered load vs latency from service metrics",
        args,
    );
    let orders = args.tuples() / 16;

    // -- Calibration: mean service time of the mix, solo and serial -------
    // One fresh device per solo run so each measurement starts from a cold
    // clock and an empty ledger; `busy` is the query's simulated service
    // demand, independent of queueing.
    let solo_busy: Vec<f64> = (0..3)
        .map(|i| {
            let dev = args.device();
            let catalog = tpch_mini(&dev, orders, 99);
            let (_, plan) = mix(i);
            let reports =
                engine::run_queries(&dev, &catalog, vec![QuerySpec::new(plan)], Policy::Serial);
            assert!(reports[0].result.is_ok(), "solo demo query must run");
            reports[0].busy.secs()
        })
        .collect();
    let mean_service = solo_busy.iter().sum::<f64>() / solo_busy.len() as f64;
    let capacity_qps = 1.0 / mean_service;
    println!(
        "M2 — open-loop serving over the demo catalog, {} orders / ~{} lineitems ({})",
        orders,
        orders * 4,
        report.device
    );
    println!(
        "calibrated mix service time {:.3}ms (q18 {:.3}ms / q3 {:.3}ms / q1 {:.3}ms) \
         => capacity ~{:.0} q/s\n",
        mean_service * 1e3,
        solo_busy[0] * 1e3,
        solo_busy[1] * 1e3,
        solo_busy[2] * 1e3,
        capacity_qps
    );

    println!(
        "{:<6} {:>12} {:>12} {:>6} {:>10} {:>12} {:>12} {:>12}",
        "rho", "offered", "achieved", "util", "in-sys", "q18 p99", "q3 p99", "q1 p99"
    );

    let mut curve: Vec<(f64, f64, f64)> = Vec::new(); // (rho, achieved, worst p99)
    for (step, &rho) in RHO_SWEEP.iter().enumerate() {
        let lambda = rho * capacity_qps;
        // Fresh device and catalog per step: the latency histograms are
        // cumulative, so a clean registry is what makes each step's
        // quantiles that step's quantiles.
        let dev = args.device();
        if !dev.metrics_enabled() {
            // The curve is derived from the metrics subsystem, so the
            // recorder is on even without --metrics (same interval rule, so
            // a --metrics run exports byte-identical histograms).
            dev.enable_metrics(args.metrics_interval());
        }
        let catalog = tpch_mini(&dev, orders, 99);
        let t0 = dev.elapsed().secs();

        // Open-loop arrival schedule: seeded exponential gaps.
        let mut rng = 0x6d30_325f_7365_7276u64 ^ (step as u64); // "m02_serv"
        let mut at = t0;
        let arrivals: Vec<OpenQuery> = (0..ARRIVALS_PER_STEP)
            .map(|i| {
                at += -uniform(&mut rng).ln() / lambda;
                let (class, plan) = mix(i);
                OpenQuery::new(SimTime::from_secs(at), class, QuerySpec::new(plan))
            })
            .collect();
        let first_arrival = arrivals[0].at.secs();

        let reports = engine::run_open_loop(&dev, &catalog, arrivals, Policy::Serial);
        assert!(
            reports.iter().all(|r| r.result.is_ok()),
            "every open-loop request must complete"
        );
        let snap = dev.metrics_snapshot().expect("metrics recorder is on");

        // Exact aggregates from the lifecycle records (sampler-independent):
        // achieved throughput, utilization, and — by Little's law, as the
        // time integral of (completion - arrival) — the time-averaged
        // number of queries in the system.
        let last_completion = reports
            .iter()
            .map(|r| r.completion.secs())
            .fold(0.0, f64::max);
        let span = last_completion - first_arrival;
        let achieved_qps = reports.len() as f64 / span;
        let busy: f64 = snap.lifecycles.iter().map(|l| l.busy_secs).sum();
        let utilization = busy / span;
        let in_system: f64 = snap
            .lifecycles
            .iter()
            .map(|l| l.completion_secs - l.arrival_secs)
            .sum::<f64>()
            / span;

        let classes: Vec<(&str, ClassStats)> = ["q18", "q3", "q1"]
            .iter()
            .map(|&c| (c, class_stats(&snap, c)))
            .collect();
        assert_eq!(
            classes.iter().map(|(_, s)| s.count).sum::<u64>(),
            ARRIVALS_PER_STEP as u64,
            "per-class histogram counts must add up to the arrivals"
        );
        println!(
            "{rho:<6} {:>8.1} q/s {:>8.1} q/s {:>5.0}% {:>10.2} {:>10.2}ms {:>10.2}ms {:>10.2}ms",
            lambda,
            achieved_qps,
            utilization * 100.0,
            in_system,
            classes[0].1.p99_s * 1e3,
            classes[1].1.p99_s * 1e3,
            classes[2].1.p99_s * 1e3
        );

        let class_json: Vec<(String, serde_json::Value)> = classes
            .iter()
            .map(|(c, s)| {
                (
                    c.to_string(),
                    serde_json::json!({
                        "count": s.count, "mean_s": s.mean_s, "p50_s": s.p50_s,
                        "p90_s": s.p90_s, "p99_s": s.p99_s, "max_s": s.max_s,
                    }),
                )
            })
            .collect();
        // Per-query lifecycle timestamps straight off the reports: the
        // request-scoped observability record (arrival, admitted, first
        // kernel, completion, queue wait) for every request in the step.
        let lifecycle_json: Vec<serde_json::Value> = reports
            .iter()
            .enumerate()
            .map(|(i, r)| {
                serde_json::json!({
                    "query": r.query, "class": mix(i).0,
                    "arrival_s": r.arrival.secs(), "admitted_s": r.admitted.secs(),
                    "started_s": r.started.secs(), "completed_s": r.completion.secs(),
                    "queue_wait_s": r.queue_wait().secs(),
                })
            })
            .collect();
        report.push(serde_json::json!({
            "sweep": "offered_load", "rho": rho, "queries": ARRIVALS_PER_STEP,
            "offered_qps": lambda, "achieved_qps": achieved_qps,
            "utilization": utilization, "mean_in_system": in_system,
            "classes": serde_json::Value::Object(class_json),
            "lifecycle": lifecycle_json,
        }));
        if args.digest_enabled() {
            if let Some(trace) = dev.trace_snapshot() {
                let explains: Vec<_> = reports
                    .iter()
                    .filter_map(|r| r.explain.clone().map(|e| (r.query, e)))
                    .collect();
                let digest = engine::slow_queries(&trace, &snap, &explains);
                args.record_digest(&format!("m02_serving rho={rho:.2}"), &digest);
            }
        }
        let worst_p99 = classes.iter().map(|(_, s)| s.p99_s).fold(0.0, f64::max);
        curve.push((rho, achieved_qps, worst_p99));
    }

    // The two ends of the latency-throughput curve, as findings.
    let below = &curve[0]; // rho = 0.25
    let above = curve.last().unwrap(); // rho = 1.5
    report.finding(format!(
        "open-loop serving saturates at the calibrated capacity: offered 1.5x capacity \
         achieves {:.1} q/s vs ~{:.0} q/s capacity, while worst-class p99 inflates \
         {:.1}x over the rho=0.25 operating point",
        above.1,
        capacity_qps,
        above.2 / below.2.max(1e-12)
    ));
    report.finding(format!(
        "the whole curve is derived from `query_latency_seconds{{class=...}}` histograms \
         ({} samples per step) and lifecycle records — no bench-side latency bookkeeping",
        ARRIVALS_PER_STEP
    ));

    report.finish(args);
    report
}
