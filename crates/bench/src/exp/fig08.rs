//! Figure 8: CPU vs GPU narrow-join throughput across input sizes
//! (|S| = 2|R|, one payload column per relation, 100% match ratio).

use crate::exp::run_algorithms;
use crate::{mtps, Args, Report};
use joins::{Algorithm, JoinConfig};
use sim::SimTime;
use workloads::JoinWorkload;

const ALGS: [Algorithm; 6] = [
    Algorithm::CpuRadix,
    Algorithm::Nphj,
    Algorithm::SmjUm,
    Algorithm::SmjOm,
    Algorithm::PhjUm,
    Algorithm::PhjOm,
];

/// Run the experiment.
pub fn run(args: &Args) -> Report {
    let mut report = Report::new("fig08", "CPU- and GPU-based narrow join throughput", args);
    let dev = args.device();
    println!(
        "Figure 8 — narrow joins, |S| = 2|R|, sizes 2^{}..2^{} ({})\n",
        args.scale_log2 - 3,
        args.scale_log2,
        report.device
    );
    print!("{:<14}", "|R| tuples");
    for alg in ALGS {
        print!(" {:>12}", alg.name());
    }
    println!("  (M tuples/s)");

    let mut best_gpu_vs_cpu = 0.0f64;
    let mut best_vs_cudf = 0.0f64;
    for shift in (0..4).rev() {
        let r_tuples = args.tuples() >> shift;
        let w = JoinWorkload::narrow(r_tuples);
        let total = w.total_tuples();
        // The CPU baseline measures real wall-clock: repeat and keep the
        // median; the simulated joins are deterministic.
        let mut row = serde_json::json!({"r_tuples": r_tuples});
        print!("{r_tuples:<14}");
        let mut cpu = f64::NAN;
        let mut nphj = f64::NAN;
        let mut best = 0.0f64;
        for alg in ALGS {
            let t = if alg == Algorithm::CpuRadix {
                let mut ts: Vec<f64> = (0..args.reps.max(1))
                    .map(|_| {
                        let (r, s) = w.generate(&dev);
                        joins::run_join(&dev, alg, &r, &s, &JoinConfig::default())
                            .stats
                            .phases
                            .total()
                            .secs()
                    })
                    .collect();
                ts.sort_by(f64::total_cmp);
                ts[ts.len() / 2]
            } else {
                run_algorithms(&dev, &w, &[alg], &JoinConfig::default())[0]
                    .1
                    .phases
                    .total()
                    .secs()
            };
            let tput = mtps(total, SimTime::from_secs(t));
            print!(" {tput:>12.1}");
            row[alg.name()] = serde_json::json!(tput);
            match alg {
                Algorithm::CpuRadix => cpu = tput,
                Algorithm::Nphj => nphj = tput,
                _ => best = best.max(tput),
            }
        }
        println!();
        best_gpu_vs_cpu = best_gpu_vs_cpu.max(best / cpu);
        best_vs_cudf = best_vs_cudf.max(best / nphj);
        report.push(row);
    }
    println!();
    report.finding(format!(
        "best GPU join is {best_gpu_vs_cpu:.1}x faster than the CPU radix join \
         (paper: up to 34.5x; the CPU here is this machine's, not a 2x36-core server)"
    ));
    report.finding(format!(
        "best GPU join is {best_vs_cudf:.1}x faster than the cuDF-style NPHJ (paper: up to 4x)"
    ));
    report.finish(args);
    report
}
