//! Table 4: micro-architectural comparison between unclustered and
//! clustered GATHERs — cycles, warp instructions, DRAM reads, and sectors
//! per load request, straight from the simulator's Nsight-style counters.

use crate::{Args, Report};
use primitives::gather;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Run the experiment.
pub fn run(args: &Args) -> Report {
    let mut report = Report::new(
        "table04",
        "Micro-architectural comparison between unclustered and clustered GATHERs",
        args,
    );
    let dev = args.device();
    let n = args.tuples();
    println!(
        "Table 4 — gathering {} 4-byte items on {}\n",
        n, report.device
    );

    let src = dev.upload((0..n as i32).collect::<Vec<_>>(), "t4.src");

    let mut unclustered_map: Vec<u32> = (0..n as u32).collect();
    unclustered_map.shuffle(&mut rand::rngs::StdRng::seed_from_u64(4));
    let measure = |map: Vec<u32>, label: &str| {
        let map = dev.upload(map, "t4.map");
        dev.reset_stats();
        dev.flush_l2();
        let _ = gather(&dev, &src, &map);
        let c = dev.counters();
        let t = dev.elapsed();
        serde_json::json!({
            "case": label,
            "items": n,
            "total_cycles": c.cycles,
            "warp_instructions": c.warp_instructions,
            "cycles_per_warp_instruction": c.cycles_per_warp_instruction(),
            "memory_reads_bytes": c.dram_read_bytes,
            "sectors_per_load_request": c.sectors_per_request(),
            "l2_hit_rate": c.l2_hit_rate(),
            "time_s": t.secs(),
        })
    };

    let unclustered = measure(unclustered_map, "unclustered");
    let clustered = measure((0..n as u32).collect(), "clustered");

    println!("{:<36} {:>16} {:>16}", "metric", "unclustered", "clustered");
    for (key, fmt) in [
        ("items", "%d"),
        ("total_cycles", "%.0f"),
        ("warp_instructions", "%d"),
        ("cycles_per_warp_instruction", "%.2f"),
        ("memory_reads_bytes", "%d"),
        ("sectors_per_load_request", "%.1f"),
        ("l2_hit_rate", "%.3f"),
    ] {
        let get = |v: &serde_json::Value| v[key].as_f64().unwrap_or(0.0);
        let show = |x: f64| match fmt {
            "%d" => format!("{}", x as u64),
            "%.0f" => format!("{x:.0}"),
            "%.1f" => format!("{x:.1}"),
            "%.3f" => format!("{x:.3}"),
            _ => format!("{x:.2}"),
        };
        println!(
            "{:<36} {:>16} {:>16}",
            key,
            show(get(&unclustered)),
            show(get(&clustered))
        );
    }
    println!();

    let cycle_ratio =
        unclustered["total_cycles"].as_f64().unwrap() / clustered["total_cycles"].as_f64().unwrap();
    let read_ratio = unclustered["memory_reads_bytes"].as_f64().unwrap()
        / clustered["memory_reads_bytes"].as_f64().unwrap();
    report.finding(format!(
        "unclustered gather is {cycle_ratio:.1}x slower in cycles (paper: ~8.5x)"
    ));
    report.finding(format!(
        "unclustered gather reads {read_ratio:.1}x more DRAM bytes (paper: 3x — 4.5 GB vs 1.5 GB)"
    ));
    report.finding(format!(
        "sectors per load request: {:.0} vs {:.0} (paper: 18 vs 6)",
        unclustered["sectors_per_load_request"].as_f64().unwrap(),
        clustered["sectors_per_load_request"].as_f64().unwrap()
    ));
    report.push(unclustered);
    report.push(clustered);
    report.finish(args);
    report
}
