//! Figure 16: sequences of joins over a star schema — each join
//! materializes one more carried column than the last, so the GFTR
//! implementations pull further ahead as the pipeline deepens.

use crate::{mtps, Args, Report};
use joins::plan::join_sequence;
use joins::{Algorithm, JoinConfig};
use sim::SimTime;
use workloads::star::star_schema;

/// Run the experiment.
pub fn run(args: &Args) -> Report {
    let mut report = Report::new("fig16", "Sequences of joins", args);
    let dev = args.device();
    let fact = args.tuples();
    let dim = args.tuples() >> 2; // the paper's |F| = 2^27, |D_i| = 2^25
    println!(
        "Figure 16 — star schema, |F| = {}, |D_i| = {}, N swept ({})\n",
        fact, dim, report.device
    );
    print!("{:<8}", "N joins");
    for alg in Algorithm::GPU_VARIANTS {
        print!(" {:>10}", alg.name());
    }
    println!("  (M tuples/s)");

    let mut ratio_at = Vec::new();
    for n_joins in [1usize, 2, 4, 6, 8] {
        let (fact_table, dims) = star_schema(&dev, fact, dim, n_joins, 16);
        let input_tuples = fact + n_joins * dim;
        print!("{n_joins:<8}");
        let mut row = serde_json::json!({"n_joins": n_joins});
        let mut um = 0.0;
        let mut om = 0.0;
        for alg in Algorithm::GPU_VARIANTS {
            let out = join_sequence(&dev, &fact_table, &dims, alg, &JoinConfig::default());
            let t = out.total_time();
            let tput = mtps(input_tuples, t);
            print!(" {tput:>10.1}");
            row[alg.name()] = serde_json::json!(tput);
            if alg == Algorithm::PhjUm {
                um = t.secs();
            }
            if alg == Algorithm::PhjOm {
                om = t.secs();
            }
        }
        println!();
        ratio_at.push((n_joins, um / om));
        report.push(row);
    }
    println!();
    let first = ratio_at
        .iter()
        .find(|(n, _)| *n == 2)
        .map(|(_, r)| *r)
        .unwrap_or(1.0);
    let last = ratio_at.last().map(|(_, r)| *r).unwrap_or(1.0);
    report.finding(format!(
        "PHJ-OM's advantage over PHJ-UM grows with pipeline depth: {first:.2}x at 2 joins \
         -> {last:.2}x at 8 (paper: 1.49x -> 1.78x)"
    ));
    let _ = SimTime::ZERO;
    report.finish(args);
    report
}
