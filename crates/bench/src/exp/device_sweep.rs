//! Ablation A4: the same wide join across device generations
//! (RTX 3090 → A100 → H100), paper-regime scaled. Asks whether bigger
//! caches and bandwidth erase the GFTR advantage — the paper's Figure 7
//! observation ("a larger GPU ... cannot alleviate the inefficiency of
//! unclustered gathers") extrapolated one generation forward.

use crate::exp::{run_algorithms, total_of};
use crate::{Args, Report};
use joins::{Algorithm, JoinConfig};
use sim::{Device, DeviceConfig};
use workloads::JoinWorkload;

/// Run the experiment.
pub fn run(args: &Args) -> Report {
    let mut report = Report::new(
        "ablation_device_sweep",
        "Wide join across device generations",
        args,
    );
    let w = JoinWorkload {
        s_tuples: args.tuples() * 2,
        ..JoinWorkload::wide(args.tuples())
    };
    println!(
        "Ablation — wide join across devices, |R| = {} (paper-regime scaled)\n",
        w.r_tuples
    );
    println!(
        "{:<10} {:>12} {:>12} {:>12} {:>12} {:>14}",
        "device", "SMJ-UM", "SMJ-OM", "PHJ-UM", "PHJ-OM", "PHJ OM/UM"
    );

    let f = args.regime_factor();
    for cfg in [
        DeviceConfig::rtx3090(),
        DeviceConfig::a100(),
        DeviceConfig::h100(),
    ] {
        let name = cfg.name.clone();
        let dev = Device::new(cfg.scaled(f));
        let results = run_algorithms(&dev, &w, &Algorithm::GPU_VARIANTS, &JoinConfig::default());
        let t = |a| total_of(&results, a);
        let ratio = t(Algorithm::PhjUm) / t(Algorithm::PhjOm);
        println!(
            "{:<10} {:>10.2}ms {:>10.2}ms {:>10.2}ms {:>10.2}ms {:>13.2}x",
            name,
            t(Algorithm::SmjUm) * 1e3,
            t(Algorithm::SmjOm) * 1e3,
            t(Algorithm::PhjUm) * 1e3,
            t(Algorithm::PhjOm) * 1e3,
            ratio
        );
        report.push(serde_json::json!({
            "device": name,
            "smj_um_s": t(Algorithm::SmjUm),
            "smj_om_s": t(Algorithm::SmjOm),
            "phj_um_s": t(Algorithm::PhjUm),
            "phj_om_s": t(Algorithm::PhjOm),
            "phj_om_over_um": ratio,
        }));
    }
    println!();
    let first = report.rows.first().unwrap()["phj_om_over_um"]
        .as_f64()
        .unwrap();
    let last = report.rows.last().unwrap()["phj_om_over_um"]
        .as_f64()
        .unwrap();
    report.finding(format!(
        "PHJ-OM's advantage persists across generations ({first:.2}x on RTX 3090, \
         {last:.2}x on H100): growing L2 and bandwidth together does not fix \
         unclustered gathers, as the paper observed for A100 vs RTX 3090"
    ));
    report.finish(args);
    report
}
