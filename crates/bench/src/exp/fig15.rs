//! Figure 15: effect of data types — 4-byte vs 8-byte keys and payloads.
//! Wider payloads make GFTR's extra transformation passes more expensive
//! (SMJ-OM loses its edge); PHJ-OM keeps winning because partitioning needs
//! half the passes of sorting.

use crate::exp::{breakdown_row, print_breakdown_header, run_algorithms, total_of};
use crate::{Args, Report};
use columnar::DType;
use joins::{Algorithm, JoinConfig};
use workloads::JoinWorkload;

/// Run the experiment.
pub fn run(args: &Args) -> Report {
    let mut report = Report::new("fig15", "Effect of data types", args);
    let dev = args.device();
    let n = args.tuples();
    let mut phj_om_wins_everywhere = true;
    for (key, payload, label) in [
        (DType::I32, DType::I32, "4B key + 4B payload"),
        (DType::I32, DType::I64, "4B key + 8B payload"),
        (DType::I64, DType::I64, "8B key + 8B payload"),
    ] {
        let w = JoinWorkload {
            r_tuples: n,
            s_tuples: n,
            key_type: key,
            r_payloads: vec![payload; 2],
            s_payloads: vec![payload; 2],
            ..JoinWorkload::narrow(n)
        };
        println!(
            "\nFigure 15 — {}, |R| = |S| = {} ({})",
            label, n, report.device
        );
        print_breakdown_header();
        let results = run_algorithms(&dev, &w, &Algorithm::GPU_VARIANTS, &JoinConfig::default());
        for (alg, stats) in &results {
            let mut row = breakdown_row(alg.name(), stats);
            row["types"] = serde_json::json!(label);
            report.push(row);
        }
        let best = results
            .iter()
            .min_by(|a, b| a.1.phases.total().partial_cmp(&b.1.phases.total()).unwrap())
            .unwrap()
            .0;
        if best != Algorithm::PhjOm {
            phj_om_wins_everywhere = false;
        }
        if payload == DType::I64 {
            let smj_gap =
                total_of(&results, Algorithm::SmjUm) / total_of(&results, Algorithm::SmjOm);
            report.finding(format!(
                "{label}: SMJ-OM's edge over SMJ-UM shrinks to {smj_gap:.2}x (paper: the \
                 8-byte sorting cost erodes it)"
            ));
        }
    }
    println!();
    report.finding(format!(
        "PHJ-OM is the fastest for every type combination: {phj_om_wins_everywhere} (paper: yes)"
    ));
    report.finish(args);
    report
}
