//! G3 (SIGMOD extension): wide aggregations — GFTR vs GFUR materialization
//! as the number of aggregated columns grows, the aggregation analog of
//! Figure 12.

use crate::{mtps, Args, Report};
use columnar::DType;
use groupby::{AggFn, GroupByAlgorithm, GroupByConfig};
use workloads::agg::AggWorkload;

/// Run the experiment.
pub fn run(args: &Args) -> Report {
    let mut report = Report::new("g03", "Wide aggregations: GFTR vs GFUR", args);
    let dev = args.device();
    let n = args.tuples();
    println!(
        "G3 — SUM over k columns, {} rows, 2^18 groups, k swept ({})\n",
        n, report.device
    );
    print!("{:<8}", "cols");
    for alg in GroupByAlgorithm::ALL {
        print!(" {:>10}", alg.name());
    }
    println!("  (M rows/s)");

    let mut sort_ratio_at_8 = 0.0;
    for cols in [1usize, 2, 4, 8] {
        let w = AggWorkload {
            payloads: vec![DType::I32; cols],
            ..AggWorkload::uniform(n, 1 << 18)
        };
        let input = w.generate(&dev);
        let aggs = vec![AggFn::Sum; cols];
        print!("{cols:<8}");
        let mut row = serde_json::json!({"cols": cols});
        let mut om = 0.0;
        let mut um = 0.0;
        for alg in GroupByAlgorithm::ALL {
            let out = groupby::run_group_by(&dev, alg, &input, &aggs, &GroupByConfig::default());
            let tput = mtps(n, out.stats.phases.total());
            print!(" {tput:>10.1}");
            row[alg.name()] = serde_json::json!(tput);
            if alg == GroupByAlgorithm::SortGftr {
                om = tput;
            }
            if alg == GroupByAlgorithm::SortGfur {
                um = tput;
            }
        }
        println!();
        if cols == 8 {
            sort_ratio_at_8 = om / um;
        }
        report.push(row);
    }
    println!();
    report.finding(format!(
        "at 8 aggregated columns, sort-GFTR is {sort_ratio_at_8:.2}x faster than sort-GFUR \
         (transforming every column beats unclustered gathers)"
    ));
    report.finish(args);
    report
}
