//! Figure 12: effect of the number of payload columns (|R| = |S|).

use crate::exp::{run_algorithms, total_of};
use crate::{mtps, Args, Report};
use columnar::DType;
use joins::{Algorithm, JoinConfig};
use workloads::JoinWorkload;

/// Run the experiment.
pub fn run(args: &Args) -> Report {
    let mut report = Report::new("fig12", "Effect of the number of payload columns", args);
    let dev = args.device();
    let n = args.tuples();
    println!(
        "Figure 12 — wide join, |R| = |S| = {}, payload columns swept ({})\n",
        n, report.device
    );
    print!("{:<10}", "cols");
    for alg in Algorithm::GPU_VARIANTS {
        print!(" {:>10}", alg.name());
    }
    println!("  (M tuples/s)");

    let mut phj_ratio_at_8 = 0.0;
    let mut smj_ratio_at_8 = 0.0;
    for cols in [1usize, 2, 4, 6, 8] {
        let w = JoinWorkload {
            r_tuples: n,
            s_tuples: n,
            r_payloads: vec![DType::I32; cols],
            s_payloads: vec![DType::I32; cols],
            ..JoinWorkload::narrow(n)
        };
        let results = run_algorithms(&dev, &w, &Algorithm::GPU_VARIANTS, &JoinConfig::default());
        print!("{cols:<10}");
        let mut row = serde_json::json!({"payload_cols": cols});
        for (alg, stats) in &results {
            let tput = mtps(w.total_tuples(), stats.phases.total());
            print!(" {tput:>10.1}");
            row[alg.name()] = serde_json::json!(tput);
        }
        println!();
        if cols == 8 {
            phj_ratio_at_8 =
                total_of(&results, Algorithm::PhjUm) / total_of(&results, Algorithm::PhjOm);
            smj_ratio_at_8 =
                total_of(&results, Algorithm::SmjUm) / total_of(&results, Algorithm::SmjOm);
        }
        report.push(row);
    }
    println!();
    report.finding(format!(
        "at 8 payload columns, PHJ-OM holds a {phj_ratio_at_8:.2}x speedup over PHJ-UM \
         (paper: ~2x maintained as columns grow)"
    ));
    report.finding(format!(
        "at 8 payload columns, SMJ-OM holds a {smj_ratio_at_8:.2}x speedup over SMJ-UM \
         (paper: ~1.3x)"
    ));
    report.finish(args);
    report
}
