//! Figure 9: phase breakdown of the GPU narrow joins (transformation at the
//! bottom of each bar, match finding on top; narrow joins have no separate
//! materialization phase — the single payload rides through the transform).

use crate::exp::{breakdown_row, print_breakdown_header, run_algorithms, total_of};
use crate::{Args, Report};
use joins::{Algorithm, JoinConfig};
use workloads::JoinWorkload;

/// Run the experiment.
pub fn run(args: &Args) -> Report {
    let mut report = Report::new("fig09", "Time breakdown of narrow joins", args);
    let dev = args.device();
    let algorithms = [
        Algorithm::Nphj,
        Algorithm::SmjUm,
        Algorithm::SmjOm,
        Algorithm::PhjUm,
        Algorithm::PhjOm,
    ];
    for shift in [2, 0] {
        let r_tuples = args.tuples() >> shift;
        let w = JoinWorkload::narrow(r_tuples);
        println!(
            "\nFigure 9 — narrow join, |R| = {} (|S| = 2|R|), {}",
            r_tuples, report.device
        );
        print_breakdown_header();
        let results = run_algorithms(&dev, &w, &algorithms, &JoinConfig::default());
        for (alg, stats) in &results {
            let mut row = breakdown_row(alg.name(), stats);
            row["r_tuples"] = serde_json::json!(r_tuples);
            report.push(row);
        }
        if shift == 0 {
            let smj = total_of(&results, Algorithm::SmjUm);
            let phj = total_of(&results, Algorithm::PhjUm);
            report.finding(format!(
                "PHJ-* beat SMJ-* on narrow joins by {:.2}x (paper: partitioning needs 2 \
                 RADIX-PARTITION passes, sorting 4)",
                smj / phj
            ));
            let um = total_of(&results, Algorithm::PhjUm);
            let om = total_of(&results, Algorithm::PhjOm);
            report.finding(format!(
                "PHJ-UM and PHJ-OM are nearly identical on narrow joins ({:.2}x apart; \
                 paper: 'very close')",
                um.max(om) / um.min(om)
            ));
            let nphj = total_of(&results, Algorithm::Nphj);
            report.finding(format!(
                "the non-partitioned join is the slowest GPU variant ({:.2}x behind PHJ-OM)",
                nphj / om
            ));
        }
    }
    println!();
    report.finish(args);
    report
}
