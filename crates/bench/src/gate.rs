//! The perf-regression gate: [`crate::diff`] with a CI-enforceable verdict.
//!
//! `bench_diff` renders drift tables for humans; this module turns the same
//! comparison into a hard gate `scripts/check.sh` and CI run on every
//! change: fresh smoke-scale results are diffed against the checked-in
//! baselines (`results/smoke14/`), and any *simulated* field drifting past
//! the tolerance fails the build. Simulated numbers are deterministic, so
//! the default tolerance is tight; wall-clock (CPU-baseline) fields time
//! the real host and are excluded from the verdict entirely — a CI runner
//! being 3x slower than the machine that produced the baselines is not a
//! regression.

use crate::diff::{diff_dirs, is_wallclock, render_drift_table, FigureDiff};
use std::path::Path;

/// Default tolerance for simulated fields: 1%. The simulator is
/// deterministic, so anything past fp noise means the cost model moved —
/// which is exactly what the gate exists to catch (and what a deliberate
/// recalibration updates the baselines for).
pub const DEFAULT_TOL: f64 = 0.01;

/// The gate's verdict over one baseline/fresh directory pair.
#[derive(Debug)]
pub struct GateOutcome {
    /// Per-figure comparisons, wall-clock breaches already stripped.
    pub diffs: Vec<FigureDiff>,
    /// The tolerance simulated fields were held to.
    pub tol: f64,
}

impl GateOutcome {
    /// True when every figure is within tolerance on its simulated fields
    /// and structurally identical.
    pub fn passed(&self) -> bool {
        self.diffs.iter().all(FigureDiff::ok)
    }

    /// The drift table plus the PASS/FAIL verdict line.
    pub fn render(&self) -> String {
        render_drift_table(&self.diffs, self.tol)
    }
}

/// Run the gate: diff every report in `baseline_dir` against `fresh_dir`
/// at `tol`, then drop breaches on wall-clock fields (they still appear in
/// `max_drift` for context; they just cannot fail the gate).
pub fn run_gate(baseline_dir: &Path, fresh_dir: &Path, tol: f64) -> std::io::Result<GateOutcome> {
    let mut diffs = diff_dirs(baseline_dir, fresh_dir, tol)?;
    for d in &mut diffs {
        d.breaches.retain(|b| !is_wallclock(&b.path));
    }
    Ok(GateOutcome { diffs, tol })
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::{json, Value};

    fn write_report(dir: &Path, name: &str, total_s: f64, cpu_s: f64) {
        let v: Value = json!({
            "experiment": name, "title": "t", "device": "a100", "scale_log2": 14,
            "rows": [json!({"alg": "PHJ-UM", "total_s": total_s, "cpu_s": cpu_s})],
            "findings": ["prose"],
        });
        std::fs::write(
            dir.join(format!("{name}.json")),
            serde_json::to_string_pretty(&v).unwrap(),
        )
        .unwrap();
    }

    fn tmp_dirs(tag: &str) -> (std::path::PathBuf, std::path::PathBuf) {
        let root = std::env::temp_dir().join(format!("gate_test_{tag}_{}", std::process::id()));
        let (b, f) = (root.join("baseline"), root.join("fresh"));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(&b).unwrap();
        std::fs::create_dir_all(&f).unwrap();
        (b, f)
    }

    #[test]
    fn identical_results_pass() {
        let (b, f) = tmp_dirs("identical");
        write_report(&b, "fig09", 1.0, 10.0);
        write_report(&f, "fig09", 1.0, 10.0);
        let g = run_gate(&b, &f, DEFAULT_TOL).unwrap();
        assert!(g.passed(), "{}", g.render());
        assert!(g.render().contains("PASS"));
    }

    #[test]
    fn ten_percent_simulated_drift_fails() {
        let (b, f) = tmp_dirs("drift");
        write_report(&b, "fig09", 1.0, 10.0);
        write_report(&f, "fig09", 1.1, 10.0);
        let g = run_gate(&b, &f, DEFAULT_TOL).unwrap();
        assert!(!g.passed(), "10% simulated drift must fail the gate");
        assert!(g.render().contains("FAIL"));
        assert!(g.diffs[0]
            .breaches
            .iter()
            .any(|x| x.path.contains("total_s")));
    }

    #[test]
    fn wallclock_drift_cannot_fail_the_gate() {
        let (b, f) = tmp_dirs("wallclock");
        write_report(&b, "fig09", 1.0, 10.0);
        write_report(&f, "fig09", 1.0, 35.0); // 3.5x slower host
        let g = run_gate(&b, &f, DEFAULT_TOL).unwrap();
        assert!(
            g.passed(),
            "wall-clock drift is not a regression: {}",
            g.render()
        );
    }

    #[test]
    fn missing_fresh_report_is_structural_failure() {
        let (b, f) = tmp_dirs("missing");
        write_report(&b, "fig09", 1.0, 10.0);
        let g = run_gate(&b, &f, DEFAULT_TOL).unwrap();
        assert!(!g.passed(), "a vanished report must fail the gate");
    }
}
