//! # bench — the experiment harness
//!
//! One runnable target per table and figure of the paper's evaluation
//! (Section 5), plus the grouped-aggregation extension experiments
//! (G1..G5). Every binary:
//!
//! * prints the same rows/series the paper reports (who wins, by what
//!   factor, where the crossovers fall — absolute numbers come from the
//!   simulator's calibrated cost model, not real hardware);
//! * accepts `--scale <log2-tuples>` (default 22; the paper's headline scale
//!   is 27), `--device a100|rtx3090`, and `--json <path>` to dump
//!   machine-readable rows;
//! * is deterministic: the simulator has no noise, so the paper's
//!   "median of 7 runs" protocol collapses to a single run (the CPU
//!   baseline, which measures real wall-clock, still repeats and takes the
//!   median).
//!
//! Run everything at once with `cargo run --release -p bench --bin run_all`.

pub mod diff;
pub mod exp;
pub mod gate;

use serde::Serialize;
use sim::Device;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

/// Shared command-line arguments for experiment binaries.
#[derive(Debug, Clone)]
pub struct Args {
    /// log2 of the base tuple count (the paper's |R| = 2^27 corresponds to
    /// `--scale 27`).
    pub scale_log2: u32,
    /// Device preset name.
    pub device: String,
    /// Optional JSON output path.
    pub json: Option<PathBuf>,
    /// Repetitions for wall-clock (CPU) measurements.
    pub reps: usize,
    /// Optional Chrome-trace output path (`--trace`). When set, every
    /// device [`Args::device`] creates records `sim::trace` events, and
    /// [`Report::finish`] exports the cumulative timeline here (plus a
    /// JSONL event log next to it).
    pub trace: Option<PathBuf>,
    /// Optional EXPLAIN ANALYZE output path (`--explain`). When set,
    /// engine-level experiments record attributed per-query reports via
    /// [`Args::record_explain`], and [`Report::finish`] writes the
    /// cumulative JSON report (queries + per-kernel roofline analysis)
    /// here. Implies tracing, so the kernel section has data.
    pub explain: Option<PathBuf>,
    /// Devices created while tracing, shared across clones of these args
    /// so a multi-experiment driver (`run_all`) accumulates one trace.
    trace_devices: Arc<Mutex<Vec<Device>>>,
    /// Attributed query reports accumulated by [`Args::record_explain`],
    /// shared across clones like the trace devices.
    explain_queries: Arc<Mutex<Vec<serde_json::Value>>>,
    /// Optional SQL text (`--sql`): the `q_tpch` binary runs this query
    /// instead of its built-in Q3/Q18 pair.
    pub sql: Option<String>,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            scale_log2: 22,
            device: "a100".to_string(),
            json: None,
            reps: 3,
            trace: None,
            explain: None,
            trace_devices: Arc::new(Mutex::new(Vec::new())),
            explain_queries: Arc::new(Mutex::new(Vec::new())),
            sql: None,
        }
    }
}

impl Args {
    /// Parse from `std::env::args`. Unknown flags abort with usage help.
    pub fn parse() -> Args {
        let mut out = Args::default();
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            match flag.as_str() {
                "--scale" => {
                    out.scale_log2 = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--scale needs a number"));
                }
                "--device" => {
                    out.device = it.next().unwrap_or_else(|| usage("--device needs a name"));
                }
                "--json" => {
                    out.json = Some(PathBuf::from(
                        it.next().unwrap_or_else(|| usage("--json needs a path")),
                    ));
                }
                "--reps" => {
                    out.reps = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--reps needs a number"));
                }
                "--trace" => {
                    out.trace = Some(PathBuf::from(
                        it.next().unwrap_or_else(|| usage("--trace needs a path")),
                    ));
                }
                "--explain" => {
                    out.explain = Some(PathBuf::from(
                        it.next().unwrap_or_else(|| usage("--explain needs a path")),
                    ));
                }
                "--sql" => {
                    out.sql = Some(it.next().unwrap_or_else(|| usage("--sql needs a query")));
                }
                other => usage(&format!("unknown flag '{other}'")),
            }
        }
        out
    }

    /// Build the requested device, applying *paper-regime scaling*: the
    /// paper's headline scale is 2^27 tuples, so a `--scale L` run shrinks
    /// the device's capacity parameters (L2, shared memory, global memory,
    /// launch overhead) by `2^(27 - L)` — see
    /// [`sim::DeviceConfig::scaled`]. At `--scale 27` you get the real
    /// hardware parameters.
    pub fn device(&self) -> Device {
        let cfg = match self.device.as_str() {
            "a100" => sim::DeviceConfig::a100(),
            "rtx3090" => sim::DeviceConfig::rtx3090(),
            other => usage(&format!("unknown device '{other}' (a100|rtx3090)")),
        };
        let dev = Device::new(cfg.scaled(self.regime_factor()));
        if self.trace.is_some() || self.explain.is_some() {
            dev.enable_tracing();
            self.trace_devices.lock().unwrap().push(dev.clone());
        }
        dev
    }

    /// The scaled configuration [`Args::device`] builds devices from.
    pub fn device_config(&self) -> sim::DeviceConfig {
        let cfg = match self.device.as_str() {
            "a100" => sim::DeviceConfig::a100(),
            "rtx3090" => sim::DeviceConfig::rtx3090(),
            other => usage(&format!("unknown device '{other}' (a100|rtx3090)")),
        };
        cfg.scaled(self.regime_factor())
    }

    /// True when `--explain` was given: engine-level experiments should
    /// record their attributed query reports.
    pub fn explain_enabled(&self) -> bool {
        self.explain.is_some()
    }

    /// Record one query's EXPLAIN ANALYZE report under `query` (an
    /// experiment-chosen label). No-op without `--explain`.
    pub fn record_explain(&self, query: &str, explain: &engine::QueryExplain) {
        if self.explain.is_none() {
            return;
        }
        self.explain_queries
            .lock()
            .unwrap()
            .push(serde_json::json!({
                "query": query,
                "tree": explain.render(),
                "report": explain.to_json(),
            }));
    }

    /// Export the cumulative EXPLAIN ANALYZE report: every query recorded
    /// via [`Args::record_explain`] plus the per-kernel roofline analysis
    /// of all traced devices. No-op without `--explain`. Called by
    /// [`Report::finish`]; re-exports overwrite.
    pub fn write_explain(&self) {
        let Some(path) = &self.explain else { return };
        let cfg = self.device_config();
        let traces = self.trace_snapshots();
        let kernels = sim::analysis::analyze_kernels(&traces, &cfg);
        let doc = serde_json::json!({
            "device": cfg.name,
            "queries": self.explain_queries.lock().unwrap().clone(),
            "kernels": serde_json::to_value(&kernels),
        });
        if let Some(parent) = path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        let data = serde_json::to_string_pretty(&doc).expect("explain report serializes");
        std::fs::write(path, data).expect("write explain report");
        println!("(wrote explain: {})", path.display());
    }

    /// Export the cumulative trace of every device created so far: Chrome
    /// `trace_event` JSON at the `--trace` path and a JSONL event log next
    /// to it (`<path>l`, i.e. `trace.json` → `trace.jsonl`). No-op without
    /// `--trace`. Called by [`Report::finish`], so each experiment that
    /// completes refreshes the files; re-exports overwrite.
    pub fn write_trace(&self) {
        let Some(path) = &self.trace else { return };
        let traces = self.trace_snapshots();
        if let Some(parent) = path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        std::fs::write(path, sim::trace::chrome_trace_json(&traces)).expect("write chrome trace");
        let mut jsonl_path = path.clone().into_os_string();
        jsonl_path.push("l");
        std::fs::write(PathBuf::from(jsonl_path), sim::trace::jsonl(&traces))
            .expect("write jsonl trace");
        println!("(wrote trace: {})", path.display());
    }

    /// Snapshots of every traced device's event log, in creation order.
    pub fn trace_snapshots(&self) -> Vec<sim::Trace> {
        self.trace_devices
            .lock()
            .unwrap()
            .iter()
            .filter_map(|d| d.trace_snapshot())
            .collect()
    }

    /// The paper-regime scaling factor `2^(27 - scale)` (1 at the paper's
    /// full scale).
    pub fn regime_factor(&self) -> f64 {
        2f64.powi(27 - self.scale_log2 as i32).max(1.0)
    }

    /// Base tuple count `2^scale_log2`.
    pub fn tuples(&self) -> usize {
        1usize << self.scale_log2
    }
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: <bin> [--scale LOG2] [--device a100|rtx3090] [--json PATH] [--reps N] \
         [--trace PATH] [--explain PATH] [--sql QUERY]"
    );
    std::process::exit(2)
}

/// A finished experiment: an identifier, headline text, and JSON rows.
#[derive(Debug, Serialize)]
pub struct Report {
    /// Experiment id (e.g. "fig10").
    pub experiment: &'static str,
    /// What the paper's corresponding artifact shows.
    pub title: &'static str,
    /// Device the run used.
    pub device: String,
    /// Base scale (log2 tuples).
    pub scale_log2: u32,
    /// One JSON object per printed row.
    pub rows: Vec<serde_json::Value>,
    /// Headline findings, one sentence each (these feed EXPERIMENTS.md).
    pub findings: Vec<String>,
}

impl Report {
    /// Create an empty report.
    pub fn new(experiment: &'static str, title: &'static str, args: &Args) -> Self {
        Report {
            experiment,
            title,
            device: args.device.clone(),
            scale_log2: args.scale_log2,
            rows: Vec::new(),
            findings: Vec::new(),
        }
    }

    /// Append a row.
    pub fn push(&mut self, row: serde_json::Value) {
        self.rows.push(row);
    }

    /// Record a headline finding (also printed).
    pub fn finding(&mut self, text: String) {
        println!(">> {text}");
        self.findings.push(text);
    }

    /// Write to `--json` if requested, and refresh the `--trace` export.
    pub fn finish(&self, args: &Args) {
        if let Some(path) = &args.json {
            if let Some(parent) = path.parent() {
                let _ = std::fs::create_dir_all(parent);
            }
            let data = serde_json::to_string_pretty(self).expect("report serializes");
            std::fs::write(path, data).expect("write json report");
            println!("(wrote {})", path.display());
        }
        args.write_trace();
        args.write_explain();
    }
}

/// Format a tuples/second figure the way the paper's axes do (M tuples/s).
pub fn mtps(tuples: usize, t: sim::SimTime) -> f64 {
    tuples as f64 / t.secs() / 1e6
}

/// `GB` with one decimal.
pub fn gb(bytes: u64) -> String {
    format!("{:.2} GB", bytes as f64 / 1e9)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_args() {
        let a = Args::default();
        assert_eq!(a.tuples(), 1 << 22);
        assert!(a.device().config().name.starts_with("A100"));
    }

    #[test]
    fn report_accumulates() {
        let args = Args::default();
        let mut r = Report::new("figX", "test", &args);
        r.push(serde_json::json!({"a": 1}));
        r.finding("works".to_string());
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.findings.len(), 1);
    }

    #[test]
    fn mtps_math() {
        let v = mtps(2_000_000, sim::SimTime::from_secs(1.0));
        assert!((v - 2.0).abs() < 1e-9);
    }
}
