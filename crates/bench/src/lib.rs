//! # bench — the experiment harness
//!
//! One runnable target per table and figure of the paper's evaluation
//! (Section 5), plus the grouped-aggregation extension experiments
//! (G1..G5). Every binary:
//!
//! * prints the same rows/series the paper reports (who wins, by what
//!   factor, where the crossovers fall — absolute numbers come from the
//!   simulator's calibrated cost model, not real hardware);
//! * accepts `--scale <log2-tuples>` (default 22; the paper's headline scale
//!   is 27), `--device a100|rtx3090`, and `--json <path>` to dump
//!   machine-readable rows;
//! * is deterministic: the simulator has no noise, so the paper's
//!   "median of 7 runs" protocol collapses to a single run (the CPU
//!   baseline, which measures real wall-clock, still repeats and takes the
//!   median).
//!
//! Run everything at once with `cargo run --release -p bench --bin run_all`.

pub mod diff;
pub mod exp;
pub mod gate;

use serde::Serialize;
use sim::Device;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

/// Shared command-line arguments for experiment binaries.
#[derive(Debug, Clone)]
pub struct Args {
    /// log2 of the base tuple count (the paper's |R| = 2^27 corresponds to
    /// `--scale 27`).
    pub scale_log2: u32,
    /// Device preset name.
    pub device: String,
    /// Optional JSON output path.
    pub json: Option<PathBuf>,
    /// Repetitions for wall-clock (CPU) measurements.
    pub reps: usize,
    /// Optional Chrome-trace output path (`--trace`). When set, every
    /// device [`Args::device`] creates records `sim::trace` events, and
    /// [`Report::finish`] exports the cumulative timeline here (plus a
    /// JSONL event log next to it).
    pub trace: Option<PathBuf>,
    /// Optional EXPLAIN ANALYZE output path (`--explain`). When set,
    /// engine-level experiments record attributed per-query reports via
    /// [`Args::record_explain`], and [`Report::finish`] writes the
    /// cumulative JSON report (queries + per-kernel roofline analysis)
    /// here. Implies tracing, so the kernel section has data.
    pub explain: Option<PathBuf>,
    /// Optional service-level metrics output path (`--metrics`). When set,
    /// every device [`Args::device`] creates records `sim::metrics`
    /// (counters, latency histograms, sampled utilization time-series on
    /// the simulated clock), and [`Report::finish`] exports the cumulative
    /// snapshots here as JSON plus OpenMetrics text at the same path with
    /// an `.om` extension.
    pub metrics: Option<PathBuf>,
    /// Optional slow-query digest output path (`--digest`). When set,
    /// serving experiments record their [`engine::SlowQueryDigest`]s via
    /// [`Args::record_digest`], and [`Report::finish`] writes the
    /// cumulative JSON report here plus the human-readable text at the
    /// same path with a `.txt` extension. Implies both tracing (for the
    /// lifecycle spans) and metrics (for SLO annotations).
    pub digest: Option<PathBuf>,
    /// Devices created while tracing, shared across clones of these args
    /// so a multi-experiment driver (`run_all`) accumulates one trace.
    trace_devices: Arc<Mutex<Vec<Device>>>,
    /// Devices created while recording metrics, shared like
    /// [`Args::trace_devices`].
    metrics_devices: Arc<Mutex<Vec<Device>>>,
    /// Attributed query reports accumulated by [`Args::record_explain`],
    /// shared across clones like the trace devices.
    explain_queries: Arc<Mutex<Vec<serde_json::Value>>>,
    /// Slow-query digests accumulated by [`Args::record_digest`], shared
    /// across clones like the trace devices.
    digest_sections: Arc<Mutex<Vec<serde_json::Value>>>,
    /// Optional SQL text (`--sql`): the `q_tpch` binary runs this query
    /// instead of its built-in Q3/Q18 pair.
    pub sql: Option<String>,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            scale_log2: 22,
            device: "a100".to_string(),
            json: None,
            reps: 3,
            trace: None,
            explain: None,
            metrics: None,
            digest: None,
            trace_devices: Arc::new(Mutex::new(Vec::new())),
            metrics_devices: Arc::new(Mutex::new(Vec::new())),
            explain_queries: Arc::new(Mutex::new(Vec::new())),
            digest_sections: Arc::new(Mutex::new(Vec::new())),
            sql: None,
        }
    }
}

impl Args {
    /// Parse from `std::env::args`. Unknown flags abort with usage help.
    pub fn parse() -> Args {
        let mut out = Args::default();
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            match flag.as_str() {
                "--scale" => {
                    out.scale_log2 = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--scale needs a number"));
                }
                "--device" => {
                    out.device = it.next().unwrap_or_else(|| usage("--device needs a name"));
                }
                "--json" => {
                    out.json = Some(PathBuf::from(
                        it.next().unwrap_or_else(|| usage("--json needs a path")),
                    ));
                }
                "--reps" => {
                    out.reps = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--reps needs a number"));
                }
                "--trace" => {
                    out.trace = Some(PathBuf::from(
                        it.next().unwrap_or_else(|| usage("--trace needs a path")),
                    ));
                }
                "--explain" => {
                    out.explain = Some(PathBuf::from(
                        it.next().unwrap_or_else(|| usage("--explain needs a path")),
                    ));
                }
                "--metrics" => {
                    out.metrics = Some(PathBuf::from(
                        it.next().unwrap_or_else(|| usage("--metrics needs a path")),
                    ));
                }
                "--digest" => {
                    out.digest = Some(PathBuf::from(
                        it.next().unwrap_or_else(|| usage("--digest needs a path")),
                    ));
                }
                "--sql" => {
                    out.sql = Some(it.next().unwrap_or_else(|| usage("--sql needs a query")));
                }
                other => usage(&format!("unknown flag '{other}'")),
            }
        }
        out
    }

    /// Build the requested device, applying *paper-regime scaling*: the
    /// paper's headline scale is 2^27 tuples, so a `--scale L` run shrinks
    /// the device's capacity parameters (L2, shared memory, global memory,
    /// launch overhead) by `2^(27 - L)` — see
    /// [`sim::DeviceConfig::scaled`]. At `--scale 27` you get the real
    /// hardware parameters.
    pub fn device(&self) -> Device {
        let cfg = match self.device.as_str() {
            "a100" => sim::DeviceConfig::a100(),
            "rtx3090" => sim::DeviceConfig::rtx3090(),
            other => usage(&format!("unknown device '{other}' (a100|rtx3090)")),
        };
        let dev = Device::new(cfg.scaled(self.regime_factor()));
        // A digest needs both the lifecycle spans (trace) and the SLO
        // annotations (metrics), so --digest implies both on every device.
        if self.trace.is_some() || self.explain.is_some() || self.digest.is_some() {
            dev.enable_tracing();
            self.trace_devices.lock().unwrap().push(dev.clone());
        }
        if self.metrics.is_some() || self.digest.is_some() {
            dev.enable_metrics(self.metrics_interval());
            self.metrics_devices.lock().unwrap().push(dev.clone());
        }
        dev
    }

    /// The sampling interval metrics-enabled devices use: 100 µs of
    /// simulated time at the paper's full scale, shrunk by the same
    /// paper-regime factor as the device itself so the sample density per
    /// kernel stays comparable across `--scale` settings. (The sampler
    /// emits at most one point per kernel launch regardless, so this only
    /// bounds resolution, not cost.)
    pub fn metrics_interval(&self) -> sim::SimTime {
        sim::SimTime::from_secs(1e-4 / self.regime_factor())
    }

    /// The scaled configuration [`Args::device`] builds devices from.
    pub fn device_config(&self) -> sim::DeviceConfig {
        let cfg = match self.device.as_str() {
            "a100" => sim::DeviceConfig::a100(),
            "rtx3090" => sim::DeviceConfig::rtx3090(),
            other => usage(&format!("unknown device '{other}' (a100|rtx3090)")),
        };
        cfg.scaled(self.regime_factor())
    }

    /// True when `--explain` was given: engine-level experiments should
    /// record their attributed query reports.
    pub fn explain_enabled(&self) -> bool {
        self.explain.is_some()
    }

    /// Record one query's EXPLAIN ANALYZE report under `query` (an
    /// experiment-chosen label). No-op without `--explain`.
    pub fn record_explain(&self, query: &str, explain: &engine::QueryExplain) {
        if self.explain.is_none() {
            return;
        }
        self.explain_queries
            .lock()
            .unwrap()
            .push(serde_json::json!({
                "query": query,
                "tree": explain.render(),
                "report": explain.to_json(),
            }));
    }

    /// Export the cumulative EXPLAIN ANALYZE report: every query recorded
    /// via [`Args::record_explain`] plus the per-kernel roofline analysis
    /// of all traced devices. No-op without `--explain`. Called by
    /// [`Report::finish`]; re-exports overwrite.
    pub fn write_explain(&self) {
        let Some(path) = &self.explain else { return };
        let cfg = self.device_config();
        let traces = self.trace_snapshots();
        let kernels = sim::analysis::analyze_kernels(&traces, &cfg);
        let doc = serde_json::json!({
            "device": cfg.name,
            "queries": self.explain_queries.lock().unwrap().clone(),
            "kernels": serde_json::to_value(&kernels),
        });
        if let Some(parent) = path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        let data = serde_json::to_string_pretty(&doc).expect("explain report serializes");
        std::fs::write(path, data).expect("write explain report");
        println!("(wrote explain: {})", path.display());
    }

    /// True when `--digest` was given: serving experiments should build
    /// and record slow-query digests.
    pub fn digest_enabled(&self) -> bool {
        self.digest.is_some()
    }

    /// Record one session's slow-query digest under `label` (an
    /// experiment-chosen identifier, e.g. `"m04_slo rho=1.50"`). No-op
    /// without `--digest`.
    pub fn record_digest(&self, label: &str, digest: &engine::SlowQueryDigest) {
        if self.digest.is_none() {
            return;
        }
        let body = serde_json::to_value(digest);
        self.digest_sections
            .lock()
            .unwrap()
            .push(serde_json::json!({
                "label": label,
                "digest": body,
                "text": digest.render(),
            }));
    }

    /// Export the cumulative slow-query digest: JSON at the `--digest`
    /// path and human-readable text next to it (same path, `.txt`
    /// extension). No-op without `--digest`. Called by [`Report::finish`];
    /// re-exports overwrite with the cumulative superset.
    pub fn write_digest(&self) {
        let Some(path) = &self.digest else { return };
        let sections = self.digest_sections.lock().unwrap().clone();
        if let Some(parent) = path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        let doc = serde_json::json!({ "sections": sections });
        let data = serde_json::to_string_pretty(&doc).expect("digest report serializes");
        std::fs::write(path, data).expect("write digest json");
        let txt_path = path.with_extension("txt");
        let mut text = String::new();
        for s in &sections {
            if let (Some(label), Some(body)) = (s["label"].as_str(), s["text"].as_str()) {
                text.push_str(&format!("== {label} ==\n{body}\n"));
            }
        }
        std::fs::write(&txt_path, text).expect("write digest text");
        println!(
            "(wrote digest: {} + {})",
            path.display(),
            txt_path.display()
        );
    }

    /// Export the cumulative trace of every device created so far: Chrome
    /// `trace_event` JSON at the `--trace` path and a JSONL event log next
    /// to it (`<path>l`, i.e. `trace.json` → `trace.jsonl`). No-op without
    /// `--trace`. Called by [`Report::finish`], so each experiment that
    /// completes refreshes the files; re-exports overwrite.
    pub fn write_trace(&self) {
        let Some(path) = &self.trace else { return };
        let traces = self.trace_snapshots();
        if let Some(parent) = path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        std::fs::write(path, sim::trace::chrome_trace_json(&traces)).expect("write chrome trace");
        let mut jsonl_path = path.clone().into_os_string();
        jsonl_path.push("l");
        std::fs::write(PathBuf::from(jsonl_path), sim::trace::jsonl(&traces))
            .expect("write jsonl trace");
        println!("(wrote trace: {})", path.display());
    }

    /// Export the cumulative service-level metrics of every
    /// metrics-enabled device created so far: JSON at the `--metrics` path
    /// and OpenMetrics text next to it (same path, `.om` extension). No-op
    /// without `--metrics`. Called by [`Report::finish`]; re-exports
    /// overwrite with the (cumulative) superset.
    pub fn write_metrics(&self) {
        let Some(path) = &self.metrics else { return };
        let snaps = self.metrics_snapshots();
        if let Some(parent) = path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        std::fs::write(path, sim::metrics_json(&snaps)).expect("write metrics json");
        let om_path = path.with_extension("om");
        std::fs::write(&om_path, sim::openmetrics(&snaps)).expect("write openmetrics");
        println!(
            "(wrote metrics: {} + {})",
            path.display(),
            om_path.display()
        );
    }

    /// Snapshots of every metrics-enabled device, in creation order.
    pub fn metrics_snapshots(&self) -> Vec<sim::MetricsSnapshot> {
        self.metrics_devices
            .lock()
            .unwrap()
            .iter()
            .filter_map(|d| d.metrics_snapshot())
            .collect()
    }

    /// Snapshots of every traced device's event log, in creation order.
    pub fn trace_snapshots(&self) -> Vec<sim::Trace> {
        self.trace_devices
            .lock()
            .unwrap()
            .iter()
            .filter_map(|d| d.trace_snapshot())
            .collect()
    }

    /// The paper-regime scaling factor `2^(27 - scale)` (1 at the paper's
    /// full scale).
    pub fn regime_factor(&self) -> f64 {
        2f64.powi(27 - self.scale_log2 as i32).max(1.0)
    }

    /// Base tuple count `2^scale_log2`.
    pub fn tuples(&self) -> usize {
        1usize << self.scale_log2
    }
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: <bin> [--scale LOG2] [--device a100|rtx3090] [--json PATH] [--reps N] \
         [--trace PATH] [--explain PATH] [--metrics PATH] [--digest PATH] [--sql QUERY]"
    );
    std::process::exit(2)
}

/// A finished experiment: an identifier, headline text, and JSON rows.
#[derive(Debug, Serialize)]
pub struct Report {
    /// Experiment id (e.g. "fig10").
    pub experiment: &'static str,
    /// What the paper's corresponding artifact shows.
    pub title: &'static str,
    /// Device the run used.
    pub device: String,
    /// Base scale (log2 tuples).
    pub scale_log2: u32,
    /// One JSON object per printed row.
    pub rows: Vec<serde_json::Value>,
    /// Headline findings, one sentence each (these feed EXPERIMENTS.md).
    pub findings: Vec<String>,
}

impl Report {
    /// Create an empty report.
    pub fn new(experiment: &'static str, title: &'static str, args: &Args) -> Self {
        Report {
            experiment,
            title,
            device: args.device.clone(),
            scale_log2: args.scale_log2,
            rows: Vec::new(),
            findings: Vec::new(),
        }
    }

    /// Append a row.
    pub fn push(&mut self, row: serde_json::Value) {
        self.rows.push(row);
    }

    /// Record a headline finding (also printed).
    pub fn finding(&mut self, text: String) {
        println!(">> {text}");
        self.findings.push(text);
    }

    /// Write to `--json` if requested, and refresh the `--trace`,
    /// `--explain` and `--metrics` exports.
    ///
    /// Shared export paths are guarded: when two experiments in one
    /// process (a `run_all` invocation) point the same flag at the same
    /// path, the write is only allowed if they share the same accumulator
    /// (cloned [`Args`]) — then later finishes rewrite the file with the
    /// cumulative superset, exactly like the shared trace devices. Two
    /// *independent* [`Args`] aiming at one path would silently overwrite
    /// each other with partial data, so that panics instead.
    pub fn finish(&self, args: &Args) {
        if let Some(path) = &args.json {
            // Re-finishing the same experiment may rewrite its own file;
            // a *different* experiment aiming at the path is the bug.
            use std::hash::{Hash, Hasher};
            let mut h = std::collections::hash_map::DefaultHasher::new();
            self.experiment.hash(&mut h);
            claim_export_path(path, h.finish() as usize, "--json");
            if let Some(parent) = path.parent() {
                let _ = std::fs::create_dir_all(parent);
            }
            let data = serde_json::to_string_pretty(self).expect("report serializes");
            std::fs::write(path, data).expect("write json report");
            println!("(wrote {})", path.display());
        }
        if let Some(path) = &args.trace {
            claim_export_path(path, Arc::as_ptr(&args.trace_devices) as usize, "--trace");
        }
        if let Some(path) = &args.explain {
            claim_export_path(
                path,
                Arc::as_ptr(&args.explain_queries) as usize,
                "--explain",
            );
        }
        if let Some(path) = &args.metrics {
            claim_export_path(
                path,
                Arc::as_ptr(&args.metrics_devices) as usize,
                "--metrics",
            );
        }
        if let Some(path) = &args.digest {
            claim_export_path(
                path,
                Arc::as_ptr(&args.digest_sections) as usize,
                "--digest",
            );
        }
        args.write_trace();
        args.write_explain();
        args.write_metrics();
        args.write_digest();
    }
}

/// Process-wide registry of export paths and the accumulator (or report)
/// identity that owns each; see [`Report::finish`].
static EXPORT_PATHS: std::sync::OnceLock<Mutex<std::collections::HashMap<PathBuf, usize>>> =
    std::sync::OnceLock::new();

fn claim_export_path(path: &std::path::Path, owner: usize, flag: &str) {
    // Poison-robust: the panic this function raises on a conflict must not
    // wedge every later (legitimate) export in the process.
    let mut map = EXPORT_PATHS
        .get_or_init(|| Mutex::new(std::collections::HashMap::new()))
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    match map.entry(path.to_path_buf()) {
        std::collections::hash_map::Entry::Occupied(e) => {
            assert!(
                *e.get() == owner,
                "two experiments would write {flag} path '{}' through different \
                 accumulators; the later write would overwrite the earlier one with \
                 partial data. Share one cloned Args (like run_all does) so the \
                 exports merge cumulatively, or give each experiment its own path.",
                path.display()
            );
        }
        std::collections::hash_map::Entry::Vacant(v) => {
            v.insert(owner);
        }
    }
}

/// Format a tuples/second figure the way the paper's axes do (M tuples/s).
pub fn mtps(tuples: usize, t: sim::SimTime) -> f64 {
    tuples as f64 / t.secs() / 1e6
}

/// `GB` with one decimal.
pub fn gb(bytes: u64) -> String {
    format!("{:.2} GB", bytes as f64 / 1e9)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_args() {
        let a = Args::default();
        assert_eq!(a.tuples(), 1 << 22);
        assert!(a.device().config().name.starts_with("A100"));
    }

    #[test]
    fn report_accumulates() {
        let args = Args::default();
        let mut r = Report::new("figX", "test", &args);
        r.push(serde_json::json!({"a": 1}));
        r.finding("works".to_string());
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.findings.len(), 1);
    }

    #[test]
    fn mtps_math() {
        let v = mtps(2_000_000, sim::SimTime::from_secs(1.0));
        assert!((v - 2.0).abs() < 1e-9);
    }

    #[test]
    fn metrics_flag_enables_device_metrics() {
        let dir = std::env::temp_dir().join("bench_metrics_flag_test");
        let args = Args {
            metrics: Some(dir.join("metrics.json")),
            ..Args::default()
        };
        let dev = args.device();
        assert!(dev.metrics_enabled());
        dev.kernel("k").items(1 << 12, 1.0).launch();
        let snaps = args.metrics_snapshots();
        assert_eq!(snaps.len(), 1);
        assert_eq!(snaps[0].totals.launches, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn duplicate_export_paths_from_different_accumulators_panic() {
        let dir = std::env::temp_dir().join("bench_dup_path_test");
        let path = dir.join("metrics.json");

        // Same Args clone → shared accumulator → merging rewrite allowed.
        let shared = Args {
            metrics: Some(path.clone()),
            ..Args::default()
        };
        let r1 = Report::new("dup_a", "t", &shared);
        r1.finish(&shared);
        r1.finish(&shared.clone());

        // Fresh Args, same path → different accumulator → must panic
        // instead of silently overwriting with partial data.
        let other = Args {
            metrics: Some(path.clone()),
            ..Args::default()
        };
        let r2 = Report::new("dup_b", "t", &other);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| r2.finish(&other)));
        assert!(err.is_err(), "conflicting --metrics paths must not merge");

        // Same story for --json: one experiment may re-finish, two may not
        // share a file.
        let json_path = dir.join("report.json");
        let jargs = Args {
            json: Some(json_path.clone()),
            ..Args::default()
        };
        Report::new("dup_j", "t", &jargs).finish(&jargs);
        Report::new("dup_j", "t", &jargs).finish(&jargs);
        let clash = Report::new("dup_k", "t", &jargs);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| clash.finish(&jargs)));
        assert!(err.is_err(), "two experiments must not share a --json path");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
