//! Criterion benchmarks of the grouped-aggregation implementations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use groupby::{AggFn, GroupByAlgorithm, GroupByConfig};
use sim::Device;
use workloads::agg::AggWorkload;

fn bench_groupby(c: &mut Criterion) {
    let dev = Device::a100();
    let n = 1 << 16;
    let input = AggWorkload::uniform(n, 1 << 10).generate(&dev);
    let config = GroupByConfig::default();
    let mut g = c.benchmark_group("groupby");
    g.throughput(Throughput::Elements(n as u64));
    for alg in GroupByAlgorithm::ALL {
        g.bench_with_input(BenchmarkId::from_parameter(alg.name()), &alg, |b, &alg| {
            b.iter(|| groupby::run_group_by(&dev, alg, &input, &[AggFn::Sum], &config));
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_groupby
}
criterion_main!(benches);
