//! Criterion microbenchmarks of the device primitives — these measure the
//! *host-side* cost of driving the simulator (useful for keeping the
//! simulator itself fast); the simulated device times are what the
//! experiment binaries report.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use primitives::{gather, radix_partition, sort_pairs};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use sim::{Device, DeviceConfig};

const N: usize = 1 << 18;

fn bench_radix_partition(c: &mut Criterion) {
    let dev = Device::a100();
    let keys = dev.upload(
        (0..N as i32)
            .map(|i| i.wrapping_mul(2654435761u32 as i32))
            .collect::<Vec<_>>(),
        "b.keys",
    );
    let vals = dev.upload((0..N as u32).collect::<Vec<_>>(), "b.vals");
    let mut g = c.benchmark_group("radix_partition");
    g.throughput(Throughput::Elements(N as u64));
    for bits in [8u32, 16] {
        g.bench_with_input(BenchmarkId::from_parameter(bits), &bits, |b, &bits| {
            b.iter(|| radix_partition(&dev, &keys, &vals, bits));
        });
    }
    g.finish();
}

fn bench_sort_pairs(c: &mut Criterion) {
    let dev = Device::a100();
    let keys = dev.upload(
        (0..N as i32)
            .map(|i| i.wrapping_mul(40503))
            .collect::<Vec<_>>(),
        "b.keys",
    );
    let vals = dev.upload((0..N as u32).collect::<Vec<_>>(), "b.vals");
    let mut g = c.benchmark_group("sort_pairs");
    g.throughput(Throughput::Elements(N as u64));
    g.bench_function("i32", |b| b.iter(|| sort_pairs(&dev, &keys, &vals)));
    g.finish();
}

fn bench_gather(c: &mut Criterion) {
    let dev = Device::a100();
    let src = dev.upload((0..N as i32).collect::<Vec<_>>(), "b.src");
    let clustered = dev.upload((0..N as u32).collect::<Vec<_>>(), "b.cmap");
    let mut shuffled: Vec<u32> = (0..N as u32).collect();
    shuffled.shuffle(&mut rand::rngs::StdRng::seed_from_u64(1));
    let unclustered = dev.upload(shuffled, "b.umap");
    let mut g = c.benchmark_group("gather");
    g.throughput(Throughput::Elements(N as u64));
    g.bench_function("clustered", |b| b.iter(|| gather(&dev, &src, &clustered)));
    g.bench_function("unclustered", |b| {
        b.iter(|| gather(&dev, &src, &unclustered))
    });
    g.finish();
}

/// Host-side scaling of the warp-traffic simulation itself: the same 2^24
/// unclustered gather charged with `host_threads = 1` (sequential reference)
/// vs every available core. Simulated counters and times are bit-identical
/// across the two; only wall-clock changes. On a multi-core host the
/// N-thread variant should be >= 2x faster.
fn bench_gather_host_threads(c: &mut Criterion) {
    const BIG: usize = 1 << 24;
    let all_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut shuffled: Vec<u32> = (0..BIG as u32).collect();
    shuffled.shuffle(&mut rand::rngs::StdRng::seed_from_u64(1));
    let mut g = c.benchmark_group("gather_2e24_host_threads");
    g.throughput(Throughput::Elements(BIG as u64));
    // On a single-core host both entries would be `1`; bench it once.
    let variants: &[usize] = if all_cores > 1 { &[1, all_cores] } else { &[1] };
    for &threads in variants {
        let dev = Device::new(DeviceConfig::a100().with_host_threads(threads));
        let src = dev.upload((0..BIG as i32).collect::<Vec<_>>(), "b.src");
        let map = dev.upload(shuffled.clone(), "b.umap");
        g.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, _| {
            b.iter(|| gather(&dev, &src, &map));
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_radix_partition, bench_sort_pairs, bench_gather, bench_gather_host_threads
}
criterion_main!(benches);
