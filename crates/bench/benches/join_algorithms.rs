//! Criterion benchmarks of the four GPU join implementations plus the CPU
//! baseline on the paper's default wide workload. Wall-clock here is the
//! simulator's host cost; the per-phase *simulated* device times are what
//! the experiment binaries (`fig*`) report.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use joins::{Algorithm, JoinConfig};
use sim::Device;
use workloads::JoinWorkload;

fn bench_joins(c: &mut Criterion) {
    let dev = Device::a100();
    let w = JoinWorkload::wide(1 << 16);
    let (r, s) = w.generate(&dev);
    let config = JoinConfig::default();
    let mut g = c.benchmark_group("join");
    g.throughput(Throughput::Elements(w.total_tuples() as u64));
    for alg in [
        Algorithm::SmjUm,
        Algorithm::SmjOm,
        Algorithm::PhjUm,
        Algorithm::PhjOm,
        Algorithm::Nphj,
        Algorithm::CpuRadix,
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(alg.name()), &alg, |b, &alg| {
            b.iter(|| joins::run_join(&dev, alg, &r, &s, &config));
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_joins
}
criterion_main!(benches);
