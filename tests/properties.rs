//! Property-based tests: every join and grouped-aggregation implementation
//! must agree with the naive oracle on *arbitrary* inputs — duplicate keys,
//! negative values, dangling tuples on either side, any payload mix.

use columnar::{Column, Relation};
use groupby::{oracle::group_by_oracle, AggFn, GroupByAlgorithm, GroupByConfig};
use joins::{oracle::hash_join_oracle, Algorithm, JoinConfig};
use proptest::prelude::*;
use sim::Device;

/// A small relation described by plain vectors (so proptest can shrink it).
#[derive(Debug, Clone)]
struct RelSpec {
    keys: Vec<i32>,
    p32: Vec<i32>,
    p64: Vec<i64>,
}

fn rel_strategy(max_rows: usize, key_range: i32) -> impl Strategy<Value = RelSpec> {
    (0..=max_rows)
        .prop_flat_map(move |n| {
            (
                proptest::collection::vec(-key_range..key_range, n),
                proptest::collection::vec(any::<i32>(), n),
                proptest::collection::vec(any::<i64>(), n),
            )
        })
        .prop_map(|(keys, p32, p64)| RelSpec { keys, p32, p64 })
}

fn build(dev: &Device, spec: &RelSpec, name: &str) -> Relation {
    Relation::new(
        name,
        Column::from_i32(dev, spec.keys.clone(), "k"),
        vec![
            Column::from_i32(dev, spec.p32.clone(), "p32"),
            Column::from_i64(dev, spec.p64.clone(), "p64"),
        ],
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_joins_match_oracle(r in rel_strategy(60, 40), s in rel_strategy(60, 40)) {
        let dev = Device::a100();
        let rr = build(&dev, &r, "R");
        let ss = build(&dev, &s, "S");
        let expected = hash_join_oracle(&rr, &ss);
        let config = JoinConfig { unique_build: false, ..JoinConfig::default() };
        for alg in [
            Algorithm::SmjUm,
            Algorithm::SmjOm,
            Algorithm::PhjUm,
            Algorithm::PhjOm,
            Algorithm::PhjOmGfur,
            Algorithm::Nphj,
            Algorithm::CpuRadix,
        ] {
            let out = joins::run_join(&dev, alg, &rr, &ss, &config);
            prop_assert_eq!(out.rows_sorted(), expected.clone(), "{}", alg);
        }
    }

    #[test]
    fn all_groupbys_match_oracle(input in rel_strategy(80, 25)) {
        let dev = Device::a100();
        let rel = build(&dev, &input, "T");
        // Min on the i32 column, Sum on the i64 column: Sum over arbitrary
        // i64 values can overflow in both oracle and implementation the same
        // way, so constrain to Min/Max/Count for the 64-bit column.
        let aggs = [AggFn::Min, AggFn::Max];
        let expected = group_by_oracle(&rel, &aggs);
        for alg in GroupByAlgorithm::ALL {
            let out = groupby::run_group_by(&dev, alg, &rel, &aggs, &GroupByConfig::default());
            prop_assert_eq!(out.rows_sorted(), expected.clone(), "{}", alg);
        }
    }

    #[test]
    fn join_is_symmetric_in_cardinality(r in rel_strategy(40, 20), s in rel_strategy(40, 20)) {
        // |R ⋈ S| == |S ⋈ R| for every implementation.
        let dev = Device::a100();
        let rr = build(&dev, &r, "R");
        let ss = build(&dev, &s, "S");
        let config = JoinConfig { unique_build: false, ..JoinConfig::default() };
        let ab = joins::run_join(&dev, Algorithm::PhjOm, &rr, &ss, &config).len();
        let ba = joins::run_join(&dev, Algorithm::PhjOm, &ss, &rr, &config).len();
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn radix_bits_are_semantically_transparent(
        r in rel_strategy(50, 30),
        s in rel_strategy(50, 30),
        bits in 1u32..12,
    ) {
        let dev = Device::a100();
        let rr = build(&dev, &r, "R");
        let ss = build(&dev, &s, "S");
        let expected = hash_join_oracle(&rr, &ss);
        let config = JoinConfig {
            unique_build: false,
            radix_bits: Some(bits),
            ..JoinConfig::default()
        };
        for alg in [Algorithm::PhjUm, Algorithm::PhjOm] {
            let out = joins::run_join(&dev, alg, &rr, &ss, &config);
            prop_assert_eq!(out.rows_sorted(), expected.clone(), "{} bits={}", alg, bits);
        }
    }

    #[test]
    fn scheduler_seed_never_changes_results(
        r in rel_strategy(50, 15),
        s in rel_strategy(50, 15),
        seed in any::<u64>(),
    ) {
        // PHJ-UM's bucket layout is scheduler-dependent (non-deterministic
        // on real hardware); its *results* must not be.
        let dev = Device::a100();
        let rr = build(&dev, &r, "R");
        let ss = build(&dev, &s, "S");
        let base = JoinConfig { unique_build: false, bucket_tuples: 16, ..JoinConfig::default() };
        let with_seed = JoinConfig { scheduler_seed: seed, ..base.clone() };
        let a = joins::run_join(&dev, Algorithm::PhjUm, &rr, &ss, &base);
        let b = joins::run_join(&dev, Algorithm::PhjUm, &rr, &ss, &with_seed);
        prop_assert_eq!(a.rows_sorted(), b.rows_sorted());
    }

    #[test]
    fn join_kinds_match_oracle_for_all_gpu_algorithms(
        r in rel_strategy(40, 15),
        s in rel_strategy(40, 15),
        kind_sel in 0usize..4,
    ) {
        use joins::JoinKind;
        let kind = [JoinKind::Inner, JoinKind::Semi, JoinKind::Anti, JoinKind::Outer][kind_sel];
        let dev = Device::a100();
        let rr = build(&dev, &r, "R");
        let ss = build(&dev, &s, "S");
        let expected = joins::oracle::join_oracle_kind(&rr, &ss, kind);
        let config = JoinConfig { unique_build: false, kind, ..JoinConfig::default() };
        for alg in [
            Algorithm::SmjOm,
            Algorithm::PhjOm,
            Algorithm::PhjUm,
            Algorithm::Nphj,
            Algorithm::CpuRadix,
        ] {
            let out = joins::run_join(&dev, alg, &rr, &ss, &config);
            prop_assert_eq!(out.rows_sorted(), expected.clone(), "{} {}", alg, kind.name());
        }
    }

    #[test]
    fn memory_model_dominance(m_t in 0u64..1_000_000, m_c in 1u64..1_000_000_000) {
        prop_assert!(
            gpu_join::memory_model::gftr_peak(m_t, m_c)
                <= gpu_join::memory_model::gfur_peak(m_t, m_c)
        );
    }

    #[test]
    fn groupby_group_count_equals_distinct_keys(input in rel_strategy(80, 30)) {
        let dev = Device::a100();
        let rel = build(&dev, &input, "T");
        let distinct: std::collections::HashSet<i64> = rel.key().iter_i64().collect();
        for alg in GroupByAlgorithm::ALL {
            let out = groupby::run_group_by(
                &dev,
                alg,
                &rel,
                &[AggFn::Count, AggFn::Count],
                &GroupByConfig::default(),
            );
            prop_assert_eq!(out.len(), distinct.len(), "{}", alg);
        }
    }
}
