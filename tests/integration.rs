//! Cross-crate integration tests: TPC extracts through the public API,
//! deterministic replay, pipelines, and dictionary round trips.

use gpu_join::pipeline::GroupKey;
use gpu_join::prelude::*;
use gpu_join::workloads::tpc::{generate, TpcJoinId};
use gpu_join::workloads::JoinWorkload;
use joins::oracle::hash_join_oracle;

const ALL_GPU: [Algorithm; 5] = [
    Algorithm::SmjUm,
    Algorithm::SmjOm,
    Algorithm::PhjUm,
    Algorithm::PhjOm,
    Algorithm::Nphj,
];

#[test]
fn every_algorithm_agrees_on_every_tpc_extract() {
    let exec = Executor::a100();
    let dev = exec.device();
    for id in TpcJoinId::ALL {
        // Tiny scale keeps J5's exploding output manageable.
        let scale = if id == TpcJoinId::J5 { 0.0002 } else { 0.001 };
        let inst = generate(dev, id, scale, DType::I32);
        let expected = hash_join_oracle(&inst.r, &inst.s);
        for alg in ALL_GPU {
            let out = exec.join(alg, &inst.r, &inst.s, &inst.config);
            assert_eq!(out.rows_sorted(), expected, "{id} via {alg}");
        }
        let out = exec.join(Algorithm::CpuRadix, &inst.r, &inst.s, &inst.config);
        assert_eq!(out.rows_sorted(), expected, "{id} via CPU");
    }
}

#[test]
fn tpc_extracts_work_with_8_byte_keys() {
    let exec = Executor::a100();
    let dev = exec.device();
    let inst = generate(dev, TpcJoinId::J1, 0.001, DType::I64);
    let expected = hash_join_oracle(&inst.r, &inst.s);
    for alg in [Algorithm::SmjOm, Algorithm::PhjOm] {
        let out = exec.join(alg, &inst.r, &inst.s, &inst.config);
        assert_eq!(out.rows_sorted(), expected, "{alg}");
    }
}

#[test]
fn deterministic_replay_same_seed_same_results_and_times() {
    let w = JoinWorkload::wide(1 << 14);
    let run = || {
        let exec = Executor::a100();
        let (r, s) = w.generate(exec.device());
        let out = exec.join(Algorithm::PhjOm, &r, &s, &JoinConfig::default());
        (out.rows_sorted(), out.stats.phases.total().secs())
    };
    let (rows1, t1) = run();
    let (rows2, t2) = run();
    assert_eq!(rows1, rows2, "same seed, same rows");
    assert_eq!(t1, t2, "the simulator is fully deterministic");
}

#[test]
fn match_ratio_controls_output_size_for_all_algorithms() {
    let exec = Executor::a100();
    let w = JoinWorkload {
        match_ratio: 0.5,
        ..JoinWorkload::wide(1 << 12)
    };
    let (r, s) = w.generate(exec.device());
    let expected = hash_join_oracle(&r, &s);
    let frac = expected.len() as f64 / s.len() as f64;
    assert!((frac - 0.5).abs() < 0.05);
    for alg in ALL_GPU {
        let out = exec.join(alg, &r, &s, &JoinConfig::default());
        assert_eq!(out.rows_sorted(), expected, "{alg}");
    }
}

#[test]
fn skewed_workloads_join_correctly() {
    let exec = Executor::a100();
    let w = JoinWorkload {
        zipf: 1.5,
        ..JoinWorkload::wide(1 << 12)
    };
    let (r, s) = w.generate(exec.device());
    let expected = hash_join_oracle(&r, &s);
    for alg in ALL_GPU {
        let out = exec.join(alg, &r, &s, &JoinConfig::default());
        assert_eq!(out.rows_sorted(), expected, "{alg}");
    }
}

#[test]
fn join_groupby_pipeline_matches_two_stage_oracle() {
    let exec = Executor::a100();
    let dev = exec.device();
    let w = JoinWorkload::narrow(1 << 12);
    let (r, s) = w.generate(dev);

    let out = join_then_group_by(
        dev,
        &r,
        &s,
        &PipelineSpec::new(
            Algorithm::PhjOm,
            GroupKey::JoinKey,
            GroupByAlgorithm::SortGftr,
            &[AggFn::Count, AggFn::Sum],
        ),
    );

    // Oracle: group the oracle join rows by key.
    use std::collections::HashMap;
    let mut expected: HashMap<i64, (i64, i64)> = HashMap::new();
    for row in hash_join_oracle(&r, &s) {
        let e = expected.entry(row[0]).or_insert((0, 0));
        e.0 += 1;
        e.1 += row[2];
    }
    let mut expected: Vec<Vec<i64>> = expected
        .into_iter()
        .map(|(k, (c, sum))| vec![k, c, sum])
        .collect();
    expected.sort_unstable();
    assert_eq!(out.groups.rows_sorted(), expected);
}

#[test]
fn dictionary_round_trips_through_a_join() {
    let exec = Executor::a100();
    let dev = exec.device();
    let mut dict = DictionaryEncoder::new();
    let ship_modes = ["AIR", "SHIP", "RAIL", "TRUCK"];
    let r_codes: Vec<i32> = (0..64).map(|i| dict.encode(ship_modes[i % 4])).collect();
    let r = Relation::new(
        "modes",
        Column::from_i32(dev, (0..64).collect(), "k"),
        vec![Column::from_i32(dev, r_codes, "mode")],
    );
    let s = Relation::new(
        "orders",
        Column::from_i32(dev, (0..256).map(|i| i % 64).collect(), "k"),
        vec![Column::from_i32(dev, (0..256).collect(), "qty")],
    );
    let out = exec.join(Algorithm::PhjOm, &r, &s, &JoinConfig::default());
    // Every materialized mode code decodes back to one of the four strings.
    for code in out.r_payloads[0].iter_i64() {
        let s = dict.decode(code as i32).expect("code is in the dictionary");
        assert!(ship_modes.contains(&s));
    }
}

#[test]
fn peak_memory_is_reported_and_bounded_by_device_capacity() {
    let exec = Executor::a100();
    let (r, s) = JoinWorkload::wide(1 << 14).generate(exec.device());
    for alg in ALL_GPU {
        let out = exec.join(alg, &r, &s, &JoinConfig::default());
        assert!(out.stats.peak_mem_bytes > 0, "{alg}");
        assert!(out.stats.peak_mem_bytes < exec.device().config().global_mem_bytes);
    }
}

#[test]
fn groupby_algorithms_agree_on_a_tpc_shaped_input() {
    let exec = Executor::a100();
    let dev = exec.device();
    let w = gpu_join::workloads::agg::AggWorkload {
        payloads: vec![DType::I32, DType::I64],
        ..gpu_join::workloads::agg::AggWorkload::uniform(1 << 13, 321)
    };
    let input = w.generate(dev);
    let aggs = [AggFn::Sum, AggFn::Min];
    let expected = gpu_join::groupby::oracle::group_by_oracle(&input, &aggs);
    for alg in GroupByAlgorithm::ALL {
        let out = exec.group_by(alg, &input, &aggs, &GroupByConfig::default());
        assert_eq!(out.rows_sorted(), expected, "{alg}");
    }
}
