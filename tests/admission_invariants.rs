//! Property suite for the serving-control layer: admission control,
//! cost-ordered queueing, and plan caching.
//!
//! Over arbitrary arrival schedules × tenant classes × budgets, the
//! scheduler must uphold:
//!
//! * **work conservation** — a closed-loop session's makespan equals the
//!   sum of per-query kernel time: the device never idles while a query
//!   is runnable, under any policy;
//! * **lifecycle ordering / no starvation** — every admitted query
//!   completes, with `arrival ≤ admitted ≤ completion` and a service
//!   interval at least as long as its own kernel time, including under
//!   [`Policy::SjfAging`] (the aging bound itself is quantified in
//!   `tests/scheduler_fairness.rs`);
//! * **shed-only-when-full** — a bounded admission queue sheds an arrival
//!   exactly when the waiting room is at capacity, and an unbounded queue
//!   never sheds; shed queries run nothing and complete at their arrival;
//! * **SJF ordering** — under [`Policy::Sjf`] (and, for simultaneous
//!   arrivals, [`Policy::SjfAging`]) completion order is exactly the cost
//!   model's predicted-time order;
//! * **plan-cache byte-identity** — a cache hit replays the recorded
//!   sampling observations and produces output, `OpStats` and EXPLAIN
//!   byte-identical to the cold (recording) run;
//! * **export byte-identity** — full metrics exports (OpenMetrics and
//!   JSON) are byte-identical across host-thread counts under *every*
//!   policy, with admission control active.

use gpu_join::engine::scheduler::{OpenQuery, Policy, QuerySpec, ServingConfig};
use gpu_join::engine::{
    self, cost, AggSpec, CacheOutcome, Catalog, EngineError, Expr, Plan, PlanCache, QueryExplain,
    QueryReport, Table,
};
use gpu_join::prelude::*;
use gpu_join::sim::{metrics_json, openmetrics};
use proptest::prelude::*;

fn device(threads: usize) -> Device {
    let dev = Device::new(
        DeviceConfig::a100()
            .scaled(8192.0)
            .with_host_threads(threads),
    );
    dev.enable_metrics(SimTime::from_secs(1e-9));
    dev
}

fn catalog(dev: &Device) -> Catalog {
    let mut c = Catalog::new();
    c.insert(Table::new(
        "orders",
        vec![("o_id", Column::from_i32(dev, (0..128).collect(), "o_id"))],
    ));
    c.insert(Table::new(
        "lineitem",
        vec![
            (
                "l_oid",
                Column::from_i32(dev, (0..640).map(|i| (i * 3) % 160).collect(), "l_oid"),
            ),
            (
                "l_qty",
                Column::from_i64(dev, (0..640).map(|i| (i * 13) % 37).collect(), "l_qty"),
            ),
        ],
    ));
    c
}

/// Plan shapes of visibly different sizes, so predicted costs spread.
fn plan_of(shape: u8) -> Plan {
    match shape % 5 {
        0 => Plan::scan("orders"),
        1 => Plan::scan("lineitem").filter(Expr::col("l_qty").gt(Expr::lit(9))),
        2 => Plan::scan("lineitem").distinct("l_oid"),
        3 => Plan::scan("orders").join(Plan::scan("lineitem"), "o_id", "l_oid"),
        _ => Plan::scan("orders")
            .join(Plan::scan("lineitem"), "o_id", "l_oid")
            .aggregate("o_id", vec![AggSpec::new(AggFn::Sum, "l_qty", "total")]),
    }
}

fn budget_of(budget: u8) -> Option<u64> {
    match budget % 3 {
        0 => None,          // equal / quarter share
        1 => Some(1 << 21), // ample, explicit
        _ => Some(1 << 20), // ample, smaller
    }
}

/// One proptest-chosen open-loop arrival: inter-arrival gap (tenths of a
/// microsecond), tenant class, plan shape and budget choice.
#[derive(Debug, Clone)]
struct ArrivalDesc {
    gap_tenth_us: u16,
    class: u8,
    shape: u8,
    budget: u8,
}

fn schedule_strategy(max_len: usize) -> impl Strategy<Value = Vec<ArrivalDesc>> {
    proptest::collection::vec(
        (0u16..400, 0u8..3, 0u8..5, 0u8..3).prop_map(|(gap_tenth_us, class, shape, budget)| {
            ArrivalDesc {
                gap_tenth_us,
                class,
                shape,
                budget,
            }
        }),
        2..=max_len,
    )
}

fn arrivals_of(schedule: &[ArrivalDesc], t0: f64) -> Vec<OpenQuery> {
    let mut at = t0;
    schedule
        .iter()
        .map(|d| {
            at += d.gap_tenth_us as f64 * 1e-7;
            let mut spec = QuerySpec::new(plan_of(d.shape));
            if let Some(b) = budget_of(d.budget) {
                spec = spec.with_budget(b);
            }
            OpenQuery::new(SimTime::from_secs(at), format!("c{}", d.class % 3), spec)
        })
        .collect()
}

fn all_policies() -> [Policy; 5] {
    [
        Policy::Serial,
        Policy::RoundRobin,
        Policy::WeightedFair,
        Policy::Sjf,
        Policy::SjfAging,
    ]
}

/// Sum of per-query busy times vs. the session span, with a tolerance for
/// float re-association (per-query sums add the same kernel durations in a
/// different order than the mirror clock did).
fn assert_work_conserved(reports: &[QueryReport], ctx: &str) {
    let total_busy: f64 = reports.iter().map(|r| r.busy.secs()).sum();
    let start = reports
        .iter()
        .map(|r| r.arrival.secs())
        .fold(f64::INFINITY, f64::min);
    let end = reports
        .iter()
        .map(|r| r.completion.secs())
        .fold(0.0f64, f64::max);
    let makespan = end - start;
    assert!(
        (makespan - total_busy).abs() <= 1e-9 * total_busy.max(1e-9),
        "{ctx}: makespan {makespan} != total busy {total_busy}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Closed loop (all tenants present at start): under every policy the
    /// session is work-conserving — its makespan is exactly the sum of the
    /// kernel time its queries received — and every lifecycle is ordered.
    #[test]
    fn closed_loop_sessions_conserve_work(
        tenants in proptest::collection::vec((0u8..5, 0u8..3), 2..=6),
        policy_idx in 0usize..5,
    ) {
        let policy = all_policies()[policy_idx];
        let dev = device(1);
        let cat = catalog(&dev);
        let specs = tenants
            .iter()
            .map(|&(shape, budget)| {
                let mut s = QuerySpec::new(plan_of(shape));
                if let Some(b) = budget_of(budget) {
                    s = s.with_budget(b);
                }
                s
            })
            .collect();
        let reports = engine::run_queries(&dev, &cat, specs, policy);
        for r in &reports {
            prop_assert!(r.result.is_ok(), "q{}: {:?}", r.query, r.result.as_ref().err());
            prop_assert!(r.arrival <= r.admitted, "q{}: admitted before arrival", r.query);
            prop_assert!(r.admitted <= r.completion, "q{}: completed before admission", r.query);
        }
        assert_work_conserved(&reports, &format!("{policy:?}"));
    }

    /// Open loop over arbitrary schedules: every query completes (no
    /// starvation, including under aging), lifecycles are ordered, the
    /// service interval covers the query's own kernel time, and the total
    /// kernel time fits inside the session span.
    #[test]
    fn open_loop_lifecycles_are_ordered_and_complete(schedule in schedule_strategy(6)) {
        for policy in [Policy::Serial, Policy::Sjf, Policy::SjfAging] {
            let dev = device(1);
            let cat = catalog(&dev);
            let arrivals = arrivals_of(&schedule, dev.elapsed().secs());
            let reports = engine::run_open_loop(&dev, &cat, arrivals, policy);
            let mut total_busy = 0.0f64;
            for r in &reports {
                prop_assert!(r.result.is_ok(), "{policy:?} q{}: {:?}", r.query, r.result.as_ref().err());
                prop_assert!(r.arrival <= r.admitted);
                prop_assert!(r.admitted <= r.completion);
                let service = r.completion.secs() - r.admitted.secs();
                let busy = r.busy.secs();
                prop_assert!(
                    service >= busy * (1.0 - 1e-9),
                    "{policy:?} q{}: service {service} < own kernel time {busy}",
                    r.query
                );
                total_busy += busy;
            }
            let start = reports.iter().map(|r| r.arrival.secs()).fold(f64::INFINITY, f64::min);
            let end = reports.iter().map(|r| r.completion.secs()).fold(0.0f64, f64::max);
            prop_assert!(
                total_busy <= (end - start) * (1.0 + 1e-9),
                "{policy:?}: kernel time {total_busy} exceeds session span {}",
                end - start
            );
        }
    }

    /// Bounded queue: with every arrival at the same instant and budgets
    /// sized so exactly two reservations fit, the shed set is exactly what
    /// the waiting-room model predicts — an arrival is shed iff the
    /// waiting room already holds `cap` earlier arrivals (registration is
    /// sequential and nothing retires while it runs) — and the same
    /// schedule under an unbounded queue sheds nothing.
    #[test]
    fn shed_exactly_when_the_waiting_room_is_full(n in 3usize..=7, cap in 0usize..=2) {
        let run = |serving: &ServingConfig| -> Vec<QueryReport> {
            let dev = device(1);
            let cat = catalog(&dev);
            let free = dev.mem_capacity() - dev.mem_report().current_bytes;
            let budget = free * 2 / 5; // two fit, the third waits
            let t0 = dev.elapsed().secs();
            let arrivals = (0..n)
                .map(|i| {
                    OpenQuery::new(
                        SimTime::from_secs(t0),
                        "all",
                        QuerySpec::new(plan_of(i as u8)).with_budget(budget),
                    )
                })
                .collect();
            engine::run_open_loop_with(&dev, &cat, arrivals, Policy::Serial, serving)
        };

        // Reference model: ids 0 and 1 admit on arrival; each later id
        // joins the waiting room if it has space, and is shed otherwise.
        let mut expect_shed = vec![false; n];
        let mut waiting = 0usize;
        for shed in expect_shed.iter_mut().skip(2) {
            if waiting >= cap {
                *shed = true;
            } else {
                waiting += 1;
            }
        }

        let bounded = run(&ServingConfig::new().with_total_depth(cap));
        for (r, &shed) in bounded.iter().zip(&expect_shed) {
            if shed {
                match &r.result {
                    Err(EngineError::QueueShed { query }) => prop_assert_eq!(*query, r.query),
                    other => panic!("q{} should shed, got {:?}", r.query, other.as_ref().err()),
                }
                prop_assert_eq!(r.busy.secs().to_bits(), 0f64.to_bits(), "shed queries run nothing");
                prop_assert_eq!(
                    r.completion.secs().to_bits(),
                    r.arrival.secs().to_bits(),
                    "a shed query completes at its arrival"
                );
            } else {
                prop_assert!(r.result.is_ok(), "q{}: {:?}", r.query, r.result.as_ref().err());
            }
        }

        let unbounded = run(&ServingConfig::default());
        for r in &unbounded {
            prop_assert!(r.result.is_ok(), "unbounded queue must never shed (q{})", r.query);
        }
    }

    /// The shortest-job policies run queries in exactly the cost model's
    /// predicted order (ties toward the lower id). With simultaneous
    /// arrivals the aging divisor is common to all queries, so
    /// [`Policy::SjfAging`] must agree with [`Policy::Sjf`].
    #[test]
    fn sjf_completion_order_follows_predicted_costs(shapes in proptest::collection::vec(0u8..5, 2..=6)) {
        for policy in [Policy::Sjf, Policy::SjfAging] {
            let dev = device(1);
            let cat = catalog(&dev);
            let predicted: Vec<f64> = shapes
                .iter()
                .map(|&s| {
                    cost::estimate(dev.config(), &cat, &plan_of(s))
                        .expect("catalog plans estimate")
                        .secs
                })
                .collect();
            let specs = shapes.iter().map(|&s| QuerySpec::new(plan_of(s))).collect();
            let reports = engine::run_queries(&dev, &cat, specs, policy);
            for r in &reports {
                prop_assert!(r.result.is_ok());
            }
            let mut expected: Vec<usize> = (0..shapes.len()).collect();
            expected.sort_by(|&a, &b| {
                predicted[a].partial_cmp(&predicted[b]).unwrap().then(a.cmp(&b))
            });
            let mut actual: Vec<usize> = (0..shapes.len()).collect();
            actual.sort_by(|&a, &b| {
                reports[a]
                    .completion
                    .secs()
                    .partial_cmp(&reports[b].completion.secs())
                    .unwrap()
                    .then(a.cmp(&b))
            });
            prop_assert_eq!(
                &expected, &actual,
                "{:?}: completion order must follow predicted costs {:?}",
                policy, predicted
            );
        }
    }

    /// Plan-cache contract: a hit — replaying the recorded sampling
    /// observations through the stored operator tree on a fresh device —
    /// is byte-identical to the cold recording run on every observable:
    /// rows, schema, the full `OpStats` tree, and the rendered EXPLAIN.
    #[test]
    fn cache_hits_are_byte_identical_to_cold_planning(shape in 0u8..5, threshold in 0i64..36) {
        let plan = match shape {
            0 => plan_of(3),
            1 => plan_of(4),
            2 => Plan::scan("lineitem")
                .filter(Expr::col("l_qty").gt(Expr::lit(threshold)))
                .aggregate("l_oid", vec![AggSpec::new(AggFn::Count, "l_qty", "n")]),
            3 => Plan::scan("lineitem")
                .filter(Expr::col("l_qty").lt(Expr::lit(threshold)))
                .distinct("l_oid"),
            _ => Plan::scan("orders").join(
                Plan::scan("lineitem").filter(Expr::col("l_qty").gt(Expr::lit(threshold))),
                "o_id",
                "l_oid",
            ),
        };
        let mut cache = PlanCache::new(4);
        let cold_dev = Device::new(DeviceConfig::a100().scaled(8192.0));
        let cold_cat = catalog(&cold_dev);
        let (cold, i0) = cache.execute(&cold_dev, &cold_cat, &plan).unwrap();
        let hot_dev = Device::new(DeviceConfig::a100().scaled(8192.0));
        let hot_cat = catalog(&hot_dev);
        let (hot, i1) = cache.execute(&hot_dev, &hot_cat, &plan).unwrap();
        prop_assert_eq!(i0.outcome, CacheOutcome::Miss);
        prop_assert_eq!(i1.outcome, CacheOutcome::Hit);
        prop_assert_eq!(i0.fingerprint, i1.fingerprint);
        prop_assert_eq!(cold.table.rows_sorted(), hot.table.rows_sorted());
        prop_assert_eq!(cold.table.column_names(), hot.table.column_names());
        prop_assert_eq!(
            format!("{:?}", cold.stats),
            format!("{:?}", hot.stats),
            "OpStats trees must be byte-identical"
        );
        prop_assert_eq!(
            QueryExplain::from_stats(cold_dev.config(), &cold.stats).render(),
            QueryExplain::from_stats(hot_dev.config(), &hot.stats).render(),
            "EXPLAIN must be byte-identical"
        );
    }
}

proptest! {
    // Ten sessions per case (5 policies × 2 thread counts): fewer cases.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Full-export byte-identity across host threads, under *every* policy
    /// — including the shortest-job pair — with a bounded queue in force so
    /// shed accounting is part of the compared bytes.
    #[test]
    fn exports_are_byte_identical_across_host_threads_for_every_policy(
        schedule in schedule_strategy(5),
        depth in (0usize..=3).prop_map(|d| (d > 0).then_some(d)),
    ) {
        let mut serving = ServingConfig::new();
        if let Some(d) = depth {
            serving = serving.with_total_depth(d);
        }
        for policy in all_policies() {
            let run = |threads: usize| -> (String, String) {
                let dev = device(threads);
                let cat = catalog(&dev);
                let arrivals = arrivals_of(&schedule, dev.elapsed().secs());
                let reports = engine::run_open_loop_with(&dev, &cat, arrivals, policy, &serving);
                for r in &reports {
                    if let Err(e) = &r.result {
                        assert!(
                            matches!(e, EngineError::QueueShed { .. }),
                            "q{}: unexpected {e:?}",
                            r.query
                        );
                    }
                }
                let snap = dev.metrics_snapshot().expect("metrics recorder is on");
                let snaps = std::slice::from_ref(&snap);
                (openmetrics(snaps), metrics_json(snaps))
            };
            let (a, b) = (run(1), run(8));
            prop_assert_eq!(a, b, "{:?}: exports differ across host threads", policy);
        }
    }
}
