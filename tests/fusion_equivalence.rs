//! Fused-vs-unfused equivalence: operator fusion and ticket-based late
//! materialization (`engine::fuse`) are pure physical rewrites.
//!
//! 1. **Byte identity** — for arbitrary inputs and plan shapes, `execute`
//!    (fusion on) and `execute_unfused` produce the *same table*: name,
//!    column names, dtypes, values, and **row order** all equal. No
//!    sort-then-compare: late materialization must not even permute rows.
//! 2. **Conservation** — in both modes the per-node counter tree sums to
//!    the whole-query delta, and the fused run launches strictly fewer
//!    kernels and reads strictly fewer DRAM bytes on a selective chain.
//! 3. **Oracle** — fusion never crosses a Join: the run above the join and
//!    the runs below it fuse separately, the below-join sides defer
//!    (GFTR) to the join boundary, and the join's key columns are always
//!    materialized values, never tickets.
//! 4. **Scheduler closure** — every scheduler policy and host-thread
//!    setting returns the same bytes as the solo fused run.

use columnar::Column;
use engine::scheduler::{Policy, QuerySpec};
use engine::{execute, execute_unfused, AggSpec, Catalog, Expr, NodeStats, Plan, Table};
use groupby::AggFn;
use heuristics::Provenance;
use joins::JoinKind;
use proptest::prelude::*;
use sim::{Counters, Device, DeviceConfig};

#[derive(Debug, Clone)]
struct TableSpec {
    keys: Vec<i32>,
    vals: Vec<i64>,
}

fn table_strategy(max_rows: usize, key_range: i32) -> impl Strategy<Value = TableSpec> {
    (0..=max_rows)
        .prop_flat_map(move |n| {
            (
                proptest::collection::vec(0..key_range, n),
                proptest::collection::vec(-1000i64..1000, n),
            )
        })
        .prop_map(|(keys, vals)| TableSpec { keys, vals })
}

fn catalog(dev: &Device, a: &TableSpec, b: &TableSpec) -> Catalog {
    let mut c = Catalog::new();
    c.insert(Table::new(
        "a",
        vec![
            ("ak", Column::from_i32(dev, a.keys.clone(), "ak")),
            ("av", Column::from_i64(dev, a.vals.clone(), "av")),
        ],
    ));
    c.insert(Table::new(
        "b",
        vec![
            ("bk", Column::from_i32(dev, b.keys.clone(), "bk")),
            ("bv", Column::from_i64(dev, b.vals.clone(), "bv")),
        ],
    ));
    c
}

/// Everything observable about a result table, row order included: the
/// table name plus, per column, its name, dtype label, and values.
type Snapshot = (String, Vec<(String, &'static str, Vec<i64>)>);

fn snapshot(t: &Table) -> Snapshot {
    (
        t.name().to_string(),
        t.columns()
            .iter()
            .map(|(n, c)| (n.clone(), c.dtype().label(), c.to_vec_i64()))
            .collect(),
    )
}

fn device(host_threads: usize) -> Device {
    Device::new(DeviceConfig::a100().with_host_threads(host_threads))
}

/// Run `plan` fused and unfused on fresh devices and demand byte identity.
/// Returns the fused snapshot so callers can cross-check other runs.
fn assert_modes_agree(
    spec_a: &TableSpec,
    spec_b: &TableSpec,
    plan: &Plan,
    host_threads: usize,
) -> Snapshot {
    let dev = device(host_threads);
    let cat = catalog(&dev, spec_a, spec_b);
    let fused = execute(&dev, &cat, plan).unwrap();
    let unfused = execute_unfused(&dev, &cat, plan).unwrap();
    let (fs, us) = (snapshot(&fused.table), snapshot(&unfused.table));
    assert_eq!(fs, us, "fused and unfused runs must be byte-identical");
    fs
}

/// The join shapes the ticket path must survive: inner carries both sides'
/// payloads, semi/anti drop the build side entirely, outer manufactures
/// unmatched rows whose deferred columns must gather as NULL sentinels.
fn join_kinds() -> impl Strategy<Value = JoinKind> {
    (0usize..4).prop_map(|i| {
        [
            JoinKind::Inner,
            JoinKind::Semi,
            JoinKind::Anti,
            JoinKind::Outer,
        ][i]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Filter/Project chains on both sides of every join kind, with a
    /// post-join filter, across host-thread settings.
    #[test]
    fn fused_plans_are_byte_identical_through_joins(
        a in table_strategy(90, 12),
        b in table_strategy(90, 12),
        t1 in -1000i64..1000,
        t2 in -1000i64..1000,
        kind in join_kinds(),
    ) {
        let left = Plan::scan("a")
            .filter(Expr::col("av").ge(Expr::lit(t1)))
            .project(vec![
                ("k", Expr::col("ak")),
                ("v3", Expr::col("av").mul(Expr::lit(3)).sub(Expr::lit(1))),
            ]);
        let right = Plan::scan("b").filter(Expr::col("bv").lt(Expr::lit(t2)));
        // Post-join, filter on the key: it is the one column every join
        // kind keeps (semi/anti drop the build side's payloads).
        let plan = left
            .join_kind(right, "k", "bk", kind)
            .filter(Expr::col("k").ne(Expr::lit(5)));
        let base = assert_modes_agree(&a, &b, &plan, 1);
        let threaded = assert_modes_agree(&a, &b, &plan, 4);
        prop_assert_eq!(base, threaded, "host threading changed the result");
    }

    /// Deferred inputs into every other materialization boundary:
    /// aggregation, sort-with-limit, and distinct.
    #[test]
    fn fused_plans_are_byte_identical_through_agg_sort_distinct(
        a in table_strategy(120, 16),
        t1 in -1000i64..1000,
        limit in 1usize..24,
    ) {
        let empty = TableSpec { keys: vec![], vals: vec![] };
        let chain = || {
            Plan::scan("a")
                .filter(Expr::col("av").ge(Expr::lit(t1)))
                .project(vec![
                    ("g", Expr::col("ak")),
                    ("x", Expr::col("av").add(Expr::lit(7))),
                ])
        };
        let agg = chain().aggregate(
            "g",
            vec![
                AggSpec::new(AggFn::Sum, "x", "sx"),
                AggSpec::new(AggFn::Count, "x", "n"),
            ],
        );
        let sort = chain().sort_by("x", true, Some(limit));
        let distinct = chain().distinct("g");
        for plan in [agg, sort, distinct] {
            assert_modes_agree(&a, &empty, &plan, 1);
        }
    }
}

fn add_counters(acc: &mut Counters, c: &Counters) {
    acc.kernel_launches += c.kernel_launches;
    acc.cycles += c.cycles;
    acc.warp_instructions += c.warp_instructions;
    acc.dram_read_bytes += c.dram_read_bytes;
    acc.dram_write_bytes += c.dram_write_bytes;
    acc.load_requests += c.load_requests;
    acc.sectors_requested += c.sectors_requested;
    acc.l2_hits += c.l2_hits;
    acc.l2_misses += c.l2_misses;
    acc.atomics += c.atomics;
}

fn sum_tree(stats: &NodeStats, acc: &mut Counters) {
    add_counters(acc, &stats.op.counters);
    for child in &stats.children {
        sum_tree(child, acc);
    }
}

/// A 10%-selective Filter → Project → Join chain big enough for the
/// savings to be unambiguous.
fn selective_chain(dev: &Device) -> (Catalog, Plan) {
    let n = 20_000usize;
    let a = TableSpec {
        keys: (0..n).map(|i| (i as i32 * 17) % 997).collect(),
        vals: (0..n).map(|i| ((i as i64 * 31) % 1000) - 500).collect(),
    };
    let b = TableSpec {
        keys: (0..n).map(|i| (i as i32 * 13) % 997).collect(),
        vals: (0..n).map(|i| (i as i64 * 7) % 1000).collect(),
    };
    let cat = catalog(dev, &a, &b);
    // vals are uniform in [-500, 500): `av >= 400` keeps ~10% of rows; the
    // second filter (over the projected column) barely cuts further but
    // forces the unfused plan through a whole extra mask/compact/gather
    // round that the fused plan folds into the same evaluation.
    let plan = Plan::scan("a")
        .filter(Expr::col("av").ge(Expr::lit(400)))
        .project(vec![
            ("k", Expr::col("ak")),
            ("v2", Expr::col("av").mul(Expr::lit(2))),
        ])
        .filter(Expr::col("v2").lt(Expr::lit(998)))
        .join(Plan::scan("b"), "k", "bk");
    (cat, plan)
}

#[test]
fn counters_conserve_and_fusion_strictly_saves_work() {
    let dev = device(1);
    let (cat, plan) = selective_chain(&dev);
    let mut per_mode = Vec::new();
    for fused in [true, false] {
        let before = dev.counters();
        let out = if fused {
            execute(&dev, &cat, &plan).unwrap()
        } else {
            execute_unfused(&dev, &cat, &plan).unwrap()
        };
        let whole = dev.counters().delta_since(&before);
        let mut attributed = Counters::default();
        sum_tree(&out.stats, &mut attributed);
        // Fusion must not break EXPLAIN's accounting: every launch and
        // byte still lands in exactly one plan node, in both modes.
        assert_eq!(attributed.kernel_launches, whole.kernel_launches);
        assert_eq!(attributed.dram_read_bytes, whole.dram_read_bytes);
        assert_eq!(attributed.dram_write_bytes, whole.dram_write_bytes);
        assert_eq!(attributed.sectors_requested, whole.sectors_requested);
        assert_eq!(attributed.atomics, whole.atomics);
        per_mode.push((snapshot(&out.table), whole));
    }
    let (fused, unfused) = (&per_mode[0], &per_mode[1]);
    assert_eq!(fused.0, unfused.0);
    assert!(
        fused.1.kernel_launches < unfused.1.kernel_launches,
        "fusion must launch strictly fewer kernels ({} vs {})",
        fused.1.kernel_launches,
        unfused.1.kernel_launches
    );
    let fused_bytes = fused.1.dram_read_bytes + fused.1.dram_write_bytes;
    let unfused_bytes = unfused.1.dram_read_bytes + unfused.1.dram_write_bytes;
    assert!(
        fused_bytes < unfused_bytes,
        "late materialization must move strictly fewer DRAM bytes ({fused_bytes} vs {unfused_bytes})"
    );
}

fn find_fusions<'a>(stats: &'a NodeStats, out: &mut Vec<&'a NodeStats>) {
    if let Some(Provenance::Fusion(_)) = &stats.provenance {
        out.push(stats);
    }
    for child in &stats.children {
        find_fusions(child, out);
    }
}

#[test]
fn fusion_never_crosses_a_join() {
    // Filter+Project above the join and Filter chains below it: three
    // separate fused nodes, never one. The join's key columns are
    // evaluated to real values at the join boundary — the probe and build
    // kernels never see a ticket where a key belongs.
    let dev = device(1);
    let n = 4096usize;
    let a = TableSpec {
        keys: (0..n).map(|i| i as i32 % 61).collect(),
        vals: (0..n).map(|i| (i as i64 % 100) - 50).collect(),
    };
    let b = TableSpec {
        keys: (0..n).map(|i| (i as i32 * 3) % 61).collect(),
        vals: (0..n).map(|i| i as i64 % 100).collect(),
    };
    let cat = catalog(&dev, &a, &b);
    let plan = Plan::scan("a")
        .filter(Expr::col("av").ge(Expr::lit(0)))
        .join(
            Plan::scan("b").filter(Expr::col("bv").lt(Expr::lit(50))),
            "ak",
            "bk",
        )
        .filter(Expr::col("bv").ne(Expr::lit(3)))
        .project(vec![("out", Expr::col("av").add(Expr::col("bv")))]);
    let out = execute(&dev, &cat, &plan).unwrap();

    // Shape: the root is one fused Filter+Project whose only child is the
    // join; the join's children are the per-side fused filters.
    assert!(
        out.stats.label.starts_with("Fused(Filter+Project"),
        "root must fuse the post-join chain, got {:?}",
        out.stats.label
    );
    assert_eq!(out.stats.children.len(), 1);
    let join = &out.stats.children[0];
    assert!(
        join.label.contains("Join"),
        "fusion must stop at the join, got {:?}",
        join.label
    );
    assert_eq!(join.children.len(), 2);
    for side in &join.children {
        assert!(
            side.label.starts_with("Fused(Filter"),
            "each side below the join fuses separately, got {:?}",
            side.label
        );
    }

    let mut fusions = Vec::new();
    find_fusions(&out.stats, &mut fusions);
    assert_eq!(fusions.len(), 3, "exactly three independent fused runs");
    for node in fusions {
        let Some(Provenance::Fusion(f)) = &node.provenance else {
            unreachable!()
        };
        if node.label == out.stats.label {
            // The plan root materializes: GFUR at the top, by definition.
            assert!(f.materialized_here, "the root has no downstream consumer");
        } else {
            // Below the join the run defers — the boundary names the join
            // as the operator that forced materialization of keys.
            assert!(!f.materialized_here, "below-join runs flow as tickets");
            assert!(
                f.boundary.contains("Join"),
                "boundary must name the join, got {:?}",
                f.boundary
            );
            assert!(f.deferred_cols > 0, "the payload rides as tickets");
        }
    }

    // And the rewrite is still just a rewrite.
    let unfused = execute_unfused(&dev, &cat, &plan).unwrap();
    assert_eq!(snapshot(&out.table), snapshot(&unfused.table));
}

#[test]
fn every_scheduler_policy_returns_the_solo_fused_bytes() {
    let solo = {
        let dev = device(1);
        let (cat, plan) = selective_chain(&dev);
        snapshot(&execute(&dev, &cat, &plan).unwrap().table)
    };
    for (threads, policy) in [
        (1, Policy::Serial),
        (4, Policy::Serial),
        (4, Policy::RoundRobin),
        (4, Policy::WeightedFair),
    ] {
        let dev = device(threads);
        let (cat, plan) = selective_chain(&dev);
        let specs = vec![QuerySpec::new(plan.clone()), QuerySpec::new(plan)];
        let reports = engine::run_queries(&dev, &cat, specs, policy);
        for r in &reports {
            let out = match &r.result {
                Ok(out) => out,
                Err(_) => panic!("tenant query succeeds"),
            };
            assert_eq!(
                snapshot(&out.table),
                solo,
                "tenant result drifted from the solo run ({threads} threads, {policy:?})"
            );
        }
    }
}
