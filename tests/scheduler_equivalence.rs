//! The scheduler's central correctness claim: concurrency is *unobservable*
//! per query. Any mix of up to 8 concurrent queries — random plan shapes
//! over joins and group-bys, random budget splits, random fair-share
//! weights — produces byte-identical per-query outputs, `OpStats` and
//! traces under [`Policy::RoundRobin`] and [`Policy::WeightedFair`] as
//! under [`Policy::Serial`] (the same specs run to completion one at a
//! time). Queries that blow their budget must fail *identically* too.

use gpu_join::engine::{self, AggSpec, Catalog, Expr, NodeStats, Plan, QueryReport, Table};
use gpu_join::prelude::*;
use gpu_join::sim::trace::jsonl;
use proptest::prelude::*;

use engine::scheduler::{Policy, QuerySpec};

/// One proptest-chosen tenant: a plan shape, a predicate knob, a fair-share
/// weight and a budget choice. Plain data so proptest can shrink it.
#[derive(Debug, Clone)]
struct TenantDesc {
    shape: u8,
    threshold: i32,
    weight: u8,
    budget: u8,
}

fn tenant_strategy() -> impl Strategy<Value = Vec<TenantDesc>> {
    proptest::collection::vec(
        (0u8..6, 0i32..64, 1u8..=4, 0u8..3).prop_map(|(shape, threshold, weight, budget)| {
            TenantDesc {
                shape,
                threshold,
                weight,
                budget,
            }
        }),
        1..=8,
    )
}

/// Deterministic two-table catalog (the Q3/Q18 shape at toy scale).
fn catalog(dev: &Device) -> Catalog {
    let n_orders = 256usize;
    let n_lines = 1024usize;
    let mut c = Catalog::new();
    c.insert(Table::new(
        "orders",
        vec![
            (
                "o_id",
                Column::from_i32(dev, (0..n_orders as i32).collect(), "o_id"),
            ),
            (
                "o_cust",
                Column::from_i32(
                    dev,
                    (0..n_orders as i32).map(|i| (i * 7) % 41).collect(),
                    "o_cust",
                ),
            ),
        ],
    ));
    c.insert(Table::new(
        "lineitem",
        vec![
            (
                "l_oid",
                Column::from_i32(
                    dev,
                    (0..n_lines as i32).map(|i| (i * 13) % 300).collect(),
                    "l_oid",
                ),
            ),
            (
                "l_qty",
                Column::from_i64(
                    dev,
                    (0..n_lines as i64).map(|i| (i * 31) % 97).collect(),
                    "l_qty",
                ),
            ),
        ],
    ));
    c
}

fn plan_of(d: &TenantDesc) -> Plan {
    match d.shape {
        0 => Plan::scan("lineitem").filter(Expr::col("l_qty").gt(Expr::lit(d.threshold as i64))),
        1 => Plan::scan("orders").join(Plan::scan("lineitem"), "o_id", "l_oid"),
        2 => Plan::scan("orders")
            .join(Plan::scan("lineitem"), "o_id", "l_oid")
            .aggregate(
                "o_cust",
                vec![
                    AggSpec::new(AggFn::Sum, "l_qty", "total_qty"),
                    AggSpec::new(AggFn::Max, "o_id", "max_order"),
                ],
            ),
        3 => Plan::scan("lineitem").distinct("l_oid"),
        4 => Plan::scan("lineitem").sort_by("l_qty", true, Some(16)),
        _ => Plan::scan("orders")
            .join(
                Plan::scan("lineitem").filter(Expr::col("l_qty").gt(Expr::lit(d.threshold as i64))),
                "o_id",
                "l_oid",
            )
            .aggregate("o_id", vec![AggSpec::new(AggFn::Count, "l_qty", "lines")]),
    }
}

fn spec_of(d: &TenantDesc) -> QuerySpec {
    let spec = QuerySpec::new(plan_of(d)).with_weight(d.weight as f64);
    match d.budget {
        // An equal share of the free capacity — always ample here.
        0 => spec,
        // Ample explicit budget.
        1 => spec.with_budget(1 << 22),
        // Tight budget: joins may re-plan out-of-core or fail with
        // BudgetExceeded — in which case they must do so *identically*
        // under every policy.
        _ => spec.with_budget(48 << 10),
    }
}

fn run(tenants: &[TenantDesc], policy: Policy) -> Vec<QueryReport> {
    let dev = Device::new(DeviceConfig::a100().scaled(8192.0));
    dev.enable_tracing();
    let catalog = catalog(&dev);
    let specs = tenants.iter().map(spec_of).collect();
    engine::run_queries(&dev, &catalog, specs, policy)
}

/// Flatten a stats tree to `(label, canonical JSON of the node's OpStats)`
/// pairs — `OpStats` has no `PartialEq`, but its serialized form is the
/// byte-level fingerprint the results files persist.
fn flatten_stats(n: &NodeStats, out: &mut Vec<(String, String)>) {
    out.push((
        n.label.clone(),
        serde_json::to_string(&n.op).expect("OpStats serializes"),
    ));
    for c in &n.children {
        flatten_stats(c, out);
    }
}

/// Canonical `(label, OpStats JSON)` form of one operator with the query
/// tag stripped, so solo (`query: None`) and in-session (`query: Some(q)`)
/// runs of the same plan compare equal. `strip_ledger` additionally zeroes
/// `peak_mem_bytes`: peaks are ledger-scoped (device-wide solo vs
/// per-tenant in-session), so solo-vs-shared comparisons exclude them.
fn canonical_op(label: &str, op: &gpu_join::sim::OpStats, strip_ledger: bool) -> (String, String) {
    let mut op = op.clone();
    op.query = None;
    if strip_ledger {
        op.peak_mem_bytes = 0;
    }
    (
        label.to_string(),
        serde_json::to_string(&op).expect("OpStats serializes"),
    )
}

/// Canonical form of a report's per-operator breakdown.
fn canonical_breakdown(
    rows: &[engine::OperatorBreakdown],
    strip_ledger: bool,
) -> Vec<(String, String)> {
    rows.iter()
        .map(|r| canonical_op(&r.label, &r.op, strip_ledger))
        .collect()
}

/// Pre-order canonical form of a stats tree (the solo-run counterpart of
/// [`canonical_breakdown`]).
fn canonical_tree(n: &NodeStats, strip_ledger: bool, out: &mut Vec<(String, String)>) {
    out.push(canonical_op(&n.label, &n.op, strip_ledger));
    for c in &n.children {
        canonical_tree(c, strip_ledger, out);
    }
}

fn assert_reports_identical(a: &QueryReport, b: &QueryReport, ctx: &str) {
    assert_eq!(a.query, b.query, "{ctx}: spec index");
    assert_eq!(a.budget_bytes, b.budget_bytes, "{ctx}: budget");
    assert_eq!(
        a.busy.secs().to_bits(),
        b.busy.secs().to_bits(),
        "{ctx}: simulated busy time must be bit-identical"
    );
    assert_eq!(a.peak_mem_bytes, b.peak_mem_bytes, "{ctx}: ledger peak");
    match (&a.result, &b.result) {
        (Ok(x), Ok(y)) => {
            assert_eq!(
                x.table.column_names(),
                y.table.column_names(),
                "{ctx}: output schema"
            );
            for (name, col) in x.table.columns() {
                let other = y.table.column(name).expect("same schema");
                assert_eq!(
                    col.to_vec_i64(),
                    other.to_vec_i64(),
                    "{ctx}: column {name:?} values"
                );
            }
            let (mut sa, mut sb) = (Vec::new(), Vec::new());
            flatten_stats(&x.stats, &mut sa);
            flatten_stats(&y.stats, &mut sb);
            assert_eq!(sa, sb, "{ctx}: per-node OpStats");
        }
        (Err(x), Err(y)) => assert_eq!(x, y, "{ctx}: error"),
        (x, y) => panic!(
            "{ctx}: outcome diverged across policies: {:?} vs {:?}",
            x.as_ref().map(|o| o.table.num_rows()),
            y.as_ref().map(|o| o.table.num_rows())
        ),
    }
    // The flattened breakdown and the attributed explain are derived from
    // the same stats, so they must agree byte-for-byte across policies too.
    assert_eq!(
        canonical_breakdown(&a.breakdown, false),
        canonical_breakdown(&b.breakdown, false),
        "{ctx}: per-operator breakdown"
    );
    assert_eq!(
        a.explain.as_ref().map(|e| e.render()),
        b.explain.as_ref().map(|e| e.render()),
        "{ctx}: rendered explain"
    );
    let (ta, tb) = (&a.trace, &b.trace);
    assert_eq!(
        ta.is_some(),
        tb.is_some(),
        "{ctx}: trace presence must agree"
    );
    if let (Some(ta), Some(tb)) = (ta, tb) {
        assert_eq!(
            jsonl(std::slice::from_ref(ta)),
            jsonl(std::slice::from_ref(tb)),
            "{ctx}: per-query traces must be byte-identical"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The tentpole property: per-query observables under a concurrent
    /// policy are byte-identical to the serial oracle.
    #[test]
    fn concurrent_policies_match_serial_oracle(tenants in tenant_strategy()) {
        let serial = run(&tenants, Policy::Serial);
        for policy in [Policy::RoundRobin, Policy::WeightedFair] {
            let concurrent = run(&tenants, policy);
            prop_assert_eq!(serial.len(), concurrent.len());
            for (a, b) in serial.iter().zip(&concurrent) {
                assert_reports_identical(a, b, &format!("{policy:?} q{}", a.query));
            }
        }
    }
}

/// Eight ample-budget tenants each compute the same answer (and simulated
/// operator time) the plain single-query `execute` path computes on a
/// private device — the query handles virtualize the device completely.
#[test]
fn eight_concurrent_queries_match_solo_execution() {
    let tenants: Vec<TenantDesc> = (0..8)
        .map(|i| TenantDesc {
            shape: i as u8 % 6,
            threshold: 11 * i,
            weight: 1 + (i as u8 % 3),
            budget: 0,
        })
        .collect();
    let concurrent = run(&tenants, Policy::RoundRobin);
    assert_eq!(concurrent.len(), 8);
    for (d, report) in tenants.iter().zip(&concurrent) {
        let dev = Device::new(DeviceConfig::a100().scaled(8192.0));
        let catalog = catalog(&dev);
        let solo = engine::execute(&dev, &catalog, &plan_of(d)).expect("solo run succeeds");
        let shared = report.result.as_ref().expect("concurrent run succeeds");
        assert_eq!(solo.table.rows_sorted(), shared.table.rows_sorted());
        // `OpStats::query` differs by construction (None solo, Some(q)
        // shared), so compare the simulated time rather than bytes.
        assert_eq!(
            solo.stats.total_time().secs().to_bits(),
            shared.stats.total_time().secs().to_bits(),
            "q{}: simulated time must not depend on co-tenants",
            report.query
        );
        // The report's flattened per-operator breakdown equals the solo
        // run's stats tree, node for node. Peaks are stripped: the solo run
        // measures them against the base ledger (catalog resident), a
        // tenant against its own empty sub-ledger — all attributed *work*
        // (counters, times, rows) must still match exactly.
        let mut solo_flat = Vec::new();
        canonical_tree(&solo.stats, true, &mut solo_flat);
        assert_eq!(
            solo_flat,
            canonical_breakdown(&report.breakdown, true),
            "q{}: per-tenant breakdown must equal the solo-run breakdown",
            report.query
        );
    }
}

/// A session of one query under every policy is just that query: identical
/// to `Policy::Serial` with itself, and `busy` covers the whole run.
#[test]
fn single_tenant_session_is_policy_invariant() {
    let tenant = [TenantDesc {
        shape: 2,
        threshold: 5,
        weight: 1,
        budget: 0,
    }];
    let serial = run(&tenant, Policy::Serial);
    for policy in [Policy::RoundRobin, Policy::WeightedFair] {
        let other = run(&tenant, policy);
        assert_reports_identical(&serial[0], &other[0], &format!("{policy:?}"));
    }
}
