//! EXPLAIN ANALYZE invariants: the attributed report must be *accounting*,
//! not estimation.
//!
//! 1. **Counter conservation** — the per-operator counter deltas in the
//!    [`engine::NodeStats`] tree sum to exactly the whole-query delta
//!    measured around `execute`: every byte, sector, atomic and launch is
//!    attributed to exactly one plan node.
//! 2. **Provenance replay** — feeding a recorded decision profile back
//!    through the decision trees reproduces the recorded choice, guard and
//!    rejection list: the explain cannot claim a branch the tree would not
//!    take.
//! 3. **Determinism** — rendered text and JSON are byte-identical across
//!    `host_threads` settings and scheduler policies, and between a solo
//!    run and a multi-tenant session of the same plan: attribution is a
//!    pure function of the recorded counters.

use engine::demo::{q18_like, q1_like, q3_like, tpch_mini};
use engine::scheduler::{Policy, QuerySpec};
use engine::{execute, NodeStats, Plan};
use heuristics::{explain_choose_group_by, explain_choose_join, Provenance};
use sim::{Counters, Device, DeviceConfig};

fn device(host_threads: usize) -> Device {
    Device::new(DeviceConfig::a100().with_host_threads(host_threads))
}

fn add_counters(acc: &mut Counters, c: &Counters) {
    acc.kernel_launches += c.kernel_launches;
    acc.cycles += c.cycles;
    acc.warp_instructions += c.warp_instructions;
    acc.dram_read_bytes += c.dram_read_bytes;
    acc.dram_write_bytes += c.dram_write_bytes;
    acc.load_requests += c.load_requests;
    acc.sectors_requested += c.sectors_requested;
    acc.l2_hits += c.l2_hits;
    acc.l2_misses += c.l2_misses;
    acc.atomics += c.atomics;
}

fn sum_tree(stats: &NodeStats, acc: &mut Counters) {
    add_counters(acc, &stats.op.counters);
    for child in &stats.children {
        sum_tree(child, acc);
    }
}

#[test]
fn per_node_counters_sum_to_the_query_delta() {
    let dev = device(1);
    let catalog = tpch_mini(&dev, 4096, 7);
    for plan in [q18_like(), q3_like(), q1_like()] {
        let before = dev.counters();
        let out = execute(&dev, &catalog, &plan).unwrap();
        let whole = dev.counters().delta_since(&before);
        let mut attributed = Counters::default();
        sum_tree(&out.stats, &mut attributed);
        // Integer counters conserve exactly: every launch, byte, sector and
        // atomic lands in exactly one plan node.
        assert_eq!(attributed.kernel_launches, whole.kernel_launches);
        assert_eq!(attributed.warp_instructions, whole.warp_instructions);
        assert_eq!(attributed.dram_read_bytes, whole.dram_read_bytes);
        assert_eq!(attributed.dram_write_bytes, whole.dram_write_bytes);
        assert_eq!(attributed.load_requests, whole.load_requests);
        assert_eq!(attributed.sectors_requested, whole.sectors_requested);
        assert_eq!(attributed.l2_hits, whole.l2_hits);
        assert_eq!(attributed.l2_misses, whole.l2_misses);
        assert_eq!(attributed.atomics, whole.atomics);
        // Cycles are f64: the telescoping per-node subtractions can differ
        // from the end-to-end subtraction by fp rounding only.
        let denom = whole.cycles.max(1.0);
        assert!(
            (attributed.cycles - whole.cycles).abs() / denom < 1e-9,
            "cycles attributed {} vs measured {}",
            attributed.cycles,
            whole.cycles
        );
        assert!(whole.kernel_launches > 0, "the plan must do device work");
    }
}

fn check_replay(stats: &NodeStats, seen: &mut usize, rejected_seen: &mut usize) {
    if let Some(p) = &stats.provenance {
        *seen += 1;
        match p {
            Provenance::Join(j) if !j.pinned => {
                let profile = j
                    .profile
                    .as_ref()
                    .expect("unpinned join decisions carry their profile");
                let replayed = explain_choose_join(profile);
                assert_eq!(
                    replayed.algorithm.name(),
                    j.choice,
                    "replaying the recorded profile must reproduce the recorded choice"
                );
                assert_eq!(replayed.guard, j.guard);
                assert_eq!(replayed.rejected, j.rejected);
                *rejected_seen += j.rejected.len();
            }
            Provenance::GroupBy(g) if !g.pinned => {
                let profile = g
                    .profile
                    .as_ref()
                    .expect("unpinned group-by decisions carry their profile");
                let replayed = explain_choose_group_by(profile);
                assert_eq!(replayed.algorithm.name(), g.choice);
                assert_eq!(replayed.guard, g.guard);
                assert_eq!(replayed.rejected, g.rejected);
                *rejected_seen += g.rejected.len();
            }
            Provenance::Join(j) => {
                assert_eq!(j.guard, "pinned by plan");
                assert!(j.rejected.is_empty());
            }
            Provenance::GroupBy(g) => {
                assert!(g.pinned);
                assert!(g.rejected.is_empty());
            }
            Provenance::Fusion(f) => {
                assert!(
                    f.selected_rows <= f.input_rows,
                    "a selection cannot grow its input"
                );
                if f.predicates == 0 {
                    assert_eq!(
                        f.selected_rows, f.input_rows,
                        "with no filter there is nothing to select away"
                    );
                    assert!(
                        f.materialized_here,
                        "projection-only runs have no ticket to defer"
                    );
                }
                assert!(
                    !f.steps.is_empty(),
                    "a fused node collapses at least one step"
                );
            }
        }
    }
    for child in &stats.children {
        check_replay(child, seen, rejected_seen);
    }
}

#[test]
fn provenance_replays_through_the_decision_trees() {
    let dev = device(1);
    let catalog = tpch_mini(&dev, 4096, 7);
    let (mut seen, mut rejected) = (0usize, 0usize);
    for plan in [q18_like(), q3_like(), q1_like()] {
        let out = execute(&dev, &catalog, &plan).unwrap();
        check_replay(&out.stats, &mut seen, &mut rejected);
    }
    assert!(seen >= 3, "the demo mix makes at least three decisions");
    assert!(
        rejected > 0,
        "at least one decision rejects earlier branches on its way down the tree"
    );
}

/// Render + JSON of every tenant's explain in one session.
fn session_explains(host_threads: usize, policy: Policy) -> (String, String) {
    let dev = device(host_threads);
    let catalog = tpch_mini(&dev, 2048, 7);
    let specs: Vec<QuerySpec> = vec![
        QuerySpec::new(q18_like()),
        QuerySpec::new(q3_like()),
        QuerySpec::new(q1_like()),
    ];
    let reports = engine::run_queries(&dev, &catalog, specs, policy);
    let mut text = String::new();
    let mut json = String::new();
    for r in &reports {
        let ex = r.explain.as_ref().expect("successful query has an explain");
        text.push_str(&ex.render());
        text.push('\n');
        json.push_str(&serde_json::to_string(&ex.to_json()).unwrap());
        json.push('\n');
    }
    (text, json)
}

#[test]
fn explain_is_byte_identical_across_host_threads_and_policies() {
    let baseline = session_explains(1, Policy::Serial);
    for (threads, policy) in [
        (1, Policy::RoundRobin),
        (4, Policy::Serial),
        (4, Policy::RoundRobin),
        (4, Policy::WeightedFair),
    ] {
        let got = session_explains(threads, policy);
        assert_eq!(
            got.0, baseline.0,
            "rendered explain must not depend on host threading or policy \
             ({threads} threads, {policy:?})"
        );
        assert_eq!(
            got.1, baseline.1,
            "JSON explain drifted ({threads} threads, {policy:?})"
        );
    }
}

#[test]
fn scheduler_explain_matches_a_solo_run() {
    // The explain a tenant gets in a shared session is byte-identical to
    // the explain of the same plan run alone under the same budget:
    // attribution never leaks co-tenant state. (The budget is pinned
    // because a tenant's planner sees its reservation as device capacity —
    // an equal share would differ between a 1- and a 2-tenant session.)
    let budget = 1u64 << 28;
    let shared = {
        let dev = device(4);
        let catalog = tpch_mini(&dev, 2048, 7);
        let specs = vec![
            QuerySpec::new(q18_like()).with_budget(budget),
            QuerySpec::new(q3_like()).with_budget(budget),
        ];
        let reports = engine::run_queries(&dev, &catalog, specs, Policy::RoundRobin);
        reports
            .iter()
            .map(|r| r.explain.as_ref().unwrap().render())
            .collect::<Vec<_>>()
    };
    let solo: Vec<String> = [q18_like(), q3_like()]
        .into_iter()
        .map(|plan| {
            let dev = device(4);
            let catalog = tpch_mini(&dev, 2048, 7);
            let specs = vec![QuerySpec::new(plan).with_budget(budget)];
            let reports = engine::run_queries(&dev, &catalog, specs, Policy::Serial);
            reports[0].explain.as_ref().unwrap().render()
        })
        .collect();
    assert_eq!(shared, solo);
}

#[test]
fn chunked_joins_record_their_chunk_count() {
    // Starve the device so the join must go out-of-core; the provenance
    // reports the chunk count the planner settled on.
    let mut cfg = DeviceConfig::a100();
    cfg.global_mem_bytes = 24 << 20;
    let dev = Device::new(cfg);
    let catalog = tpch_mini(&dev, 60_000, 7);
    let plan = Plan::scan("orders").join(Plan::scan("lineitem"), "o_id", "l_oid");
    let out = execute(&dev, &catalog, &plan).unwrap();
    fn find_join(stats: &NodeStats) -> Option<&heuristics::JoinProvenance> {
        if let Some(Provenance::Join(j)) = &stats.provenance {
            return Some(j);
        }
        stats.children.iter().find_map(find_join)
    }
    let j = find_join(&out.stats).expect("join node carries provenance");
    assert!(
        j.chunks > 1,
        "a starved device must re-plan out-of-core (got {} chunks): {}",
        j.chunks,
        out.stats.render()
    );
    assert!(j.free_mem_bytes < 24 << 20);
}
