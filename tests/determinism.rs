//! Cross-cutting determinism: the parallel warp-traffic simulation
//! (`DeviceConfig::host_threads > 1`) must be *bit-identical* to the
//! sequential reference path — same `Counters` (including the f64 cycle
//! total), same `SimTime`, same results — for any input.

use columnar::{Column, Relation};
use joins::{Algorithm, JoinConfig};
use primitives::gather;
use proptest::prelude::*;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use sim::{Counters, Device, DeviceConfig, SimTime};

fn device(host_threads: usize) -> Device {
    Device::new(DeviceConfig::a100().with_host_threads(host_threads))
}

/// Run an unclustered gather of `n` elements (map = seeded shuffle of a
/// permutation) and return everything observable about the simulation.
fn gather_run(host_threads: usize, n: usize, seed: u64) -> (Vec<i32>, Counters, SimTime) {
    let dev = device(host_threads);
    let src = dev.upload((0..n as i32).collect::<Vec<_>>(), "d.src");
    let mut map: Vec<u32> = (0..n as u32).collect();
    map.shuffle(&mut rand::rngs::StdRng::seed_from_u64(seed));
    let map = dev.upload(map, "d.map");
    let out = gather(&dev, &src, &map).into_vec();
    (out, dev.counters(), dev.elapsed())
}

/// Run a PHJ-OM join over the given key vectors and return the sorted
/// output rows plus the device's counters and clock.
fn join_run(
    host_threads: usize,
    r_keys: &[i32],
    s_keys: &[i32],
) -> (Vec<Vec<i64>>, Counters, SimTime) {
    let dev = device(host_threads);
    let build_rel = |keys: &[i32], name: &'static str| {
        let payload: Vec<i64> = keys.iter().map(|&k| k as i64 * 10 + 1).collect();
        Relation::new(
            name,
            Column::from_i32(&dev, keys.to_vec(), "k"),
            vec![Column::from_i64(&dev, payload, "p")],
        )
    };
    let rr = build_rel(r_keys, "R");
    let ss = build_rel(s_keys, "S");
    let config = JoinConfig {
        unique_build: false,
        ..JoinConfig::default()
    };
    let out = joins::run_join(&dev, Algorithm::PhjOm, &rr, &ss, &config);
    (out.rows_sorted(), dev.counters(), dev.elapsed())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn gather_is_bit_identical_across_host_threads(
        n in 1usize..20_000,
        seed in any::<u64>(),
    ) {
        let reference = gather_run(1, n, seed);
        for threads in [2usize, 4] {
            let parallel = gather_run(threads, n, seed);
            prop_assert_eq!(&parallel.0, &reference.0, "output, threads={}", threads);
            prop_assert_eq!(&parallel.1, &reference.1, "counters, threads={}", threads);
            prop_assert_eq!(parallel.2, reference.2, "elapsed, threads={}", threads);
        }
    }

    #[test]
    fn phj_om_is_bit_identical_across_host_threads(
        r in proptest::collection::vec(-50i32..50, 0..300),
        s in proptest::collection::vec(-50i32..50, 0..300),
    ) {
        let reference = join_run(1, &r, &s);
        let parallel = join_run(4, &r, &s);
        prop_assert_eq!(&parallel.0, &reference.0, "join output");
        prop_assert_eq!(&parallel.1, &reference.1, "counters");
        prop_assert_eq!(parallel.2, reference.2, "elapsed");
    }
}

/// A fixed large case that is guaranteed to engage the block-parallel path
/// (2^16 addresses = 2048 warps) on every thread count tested.
#[test]
fn large_gather_engages_parallel_path_and_matches() {
    let reference = gather_run(1, 1 << 16, 7);
    for threads in [2usize, 3, 4, 8] {
        let parallel = gather_run(threads, 1 << 16, 7);
        assert_eq!(parallel.1, reference.1, "counters, threads={threads}");
        assert_eq!(parallel.2, reference.2, "elapsed, threads={threads}");
        assert_eq!(parallel.0, reference.0, "output, threads={threads}");
    }
}
