//! Invariants of the `sim::trace` subsystem, checked end to end through
//! the real execution stack:
//!
//! * kernel-event durations account for exactly the simulated time the
//!   hardware counters report (`Counters::cycles / clock_hz`);
//! * spans nest — any two spans on a device are either disjoint or one
//!   contains the other;
//! * phase spans reproduce the reported [`PhaseTimes`], and operator spans
//!   reproduce [`OpStats::total_time`], within 1 ns of simulated time;
//! * traces are byte-identical across host-thread counts (the trace is
//!   derived under the device lock from state that is itself
//!   deterministic).

use gpu_join::prelude::*;
use gpu_join::sim::trace::{chrome_trace_json, jsonl, SpanEvent, Trace};
use gpu_join::sim::SpanCat;
use gpu_join::workloads::JoinWorkload;

/// 1 ns of simulated time — the acceptance tolerance for span sums.
const NS: f64 = 1e-9;

fn traced_device() -> Device {
    let dev = Device::new(DeviceConfig::a100().scaled(8192.0));
    dev.enable_tracing();
    dev
}

fn spans_of(trace: &Trace, cat: SpanCat) -> Vec<SpanEvent> {
    trace.spans().filter(|s| s.cat == cat).cloned().collect()
}

#[test]
fn kernel_durations_sum_to_counter_cycles() {
    for alg in [Algorithm::PhjUm, Algorithm::SmjOm, Algorithm::Nphj] {
        let dev = traced_device();
        let (r, s) = JoinWorkload::wide(1 << 14).generate(&dev);
        let _ = gpu_join::joins::run_join(&dev, alg, &r, &s, &JoinConfig::default());
        let counters = dev.counters();
        let trace = dev.take_trace().expect("tracing was enabled");

        let kernel_secs: f64 = trace.kernels().map(|k| k.dur).sum();
        let counter_secs = counters.cycles / dev.config().clock_hz;
        assert_eq!(trace.kernels().count() as u64, counters.kernel_launches);
        assert!(
            (kernel_secs - counter_secs).abs() <= counter_secs * 1e-9,
            "{alg:?}: kernel events cover {kernel_secs}s but counters say {counter_secs}s"
        );
    }
}

#[test]
fn spans_nest_without_overlap() {
    let dev = traced_device();
    let (r, s) = JoinWorkload::wide(1 << 14).generate(&dev);
    let spec = PipelineSpec::new(
        Algorithm::PhjUm,
        GroupKey::JoinKey,
        GroupByAlgorithm::SortGftr,
        &[AggFn::Sum; 4],
    );
    let _ = join_then_group_by(&dev, &r, &s, &spec);
    let trace = dev.take_trace().expect("tracing was enabled");
    let spans: Vec<&SpanEvent> = trace.spans().collect();
    assert!(spans.len() > 8, "pipeline should produce a rich span tree");

    for (i, a) in spans.iter().enumerate() {
        for b in spans.iter().skip(i + 1) {
            let disjoint = a.end <= b.start + NS || b.end <= a.start + NS;
            let a_in_b = b.start <= a.start + NS && a.end <= b.end + NS;
            let b_in_a = a.start <= b.start + NS && b.end <= a.end + NS;
            assert!(
                disjoint || a_in_b || b_in_a,
                "spans overlap without nesting: {:?} [{}, {}] vs {:?} [{}, {}]",
                a.name,
                a.start,
                a.end,
                b.name,
                b.start,
                b.end
            );
        }
    }
}

#[test]
fn phase_spans_reproduce_reported_phase_times() {
    for alg in [Algorithm::PhjUm, Algorithm::PhjOm, Algorithm::SmjUm] {
        let dev = traced_device();
        let (r, s) = JoinWorkload::wide(1 << 14).generate(&dev);
        let out = gpu_join::joins::run_join(&dev, alg, &r, &s, &JoinConfig::default());
        let trace = dev.take_trace().expect("tracing was enabled");

        let join_spans = spans_of(&trace, SpanCat::Join);
        assert_eq!(join_spans.len(), 1);
        let join = &join_spans[0];
        assert_eq!(join.name, alg.name());
        // run_join attributes every simulated instant to a phase
        // (`other` stays zero), so the covering span *is* the phase total.
        assert!(
            (join.dur() - out.stats.op.total_time().secs()).abs() <= NS,
            "{alg:?}: join span {}s vs OpStats::total_time {}s",
            join.dur(),
            out.stats.op.total_time().secs()
        );

        let phase_secs: f64 = spans_of(&trace, SpanCat::Phase)
            .iter()
            .filter(|p| join.start <= p.start + NS && p.end <= join.end + NS)
            .map(SpanEvent::dur)
            .sum();
        let reported = out.stats.phases.total().secs();
        assert!(
            (phase_secs - reported).abs() <= NS,
            "{alg:?}: phase spans sum to {phase_secs}s but PhaseTimes::total is {reported}s"
        );
    }
}

#[test]
fn operator_span_durations_match_op_stats() {
    let dev = traced_device();
    let (r, s) = JoinWorkload::wide(1 << 14).generate(&dev);
    let spec = PipelineSpec::new(
        Algorithm::PhjOm,
        GroupKey::JoinKey,
        GroupByAlgorithm::HashGlobal,
        &[AggFn::Sum; 4],
    );
    let out = join_then_group_by(&dev, &r, &s, &spec);
    let trace = dev.take_trace().expect("tracing was enabled");

    // Flatten the engine's stats tree: label -> node-only total_time.
    fn flatten(n: &gpu_join::engine::NodeStats, out: &mut Vec<(String, f64)>) {
        out.push((n.label.clone(), n.op.total_time().secs()));
        for c in &n.children {
            flatten(c, out);
        }
    }
    let mut nodes = Vec::new();
    flatten(&out.stats, &mut nodes);

    let op_spans = spans_of(&trace, SpanCat::Operator);
    assert_eq!(
        op_spans.len(),
        nodes.len(),
        "one operator span per plan node"
    );
    for (label, secs) in nodes {
        let span = op_spans
            .iter()
            .find(|s| s.name == label)
            .unwrap_or_else(|| panic!("no operator span labelled {label:?}"));
        assert!(
            (span.dur() - secs).abs() <= NS,
            "{label}: span {}s vs OpStats::total_time {}s",
            span.dur(),
            secs
        );
    }
}

#[test]
fn traces_are_byte_identical_across_host_threads() {
    let run = |threads: usize| -> Trace {
        let dev = Device::new(
            DeviceConfig::a100()
                .scaled(8192.0)
                .with_host_threads(threads),
        );
        dev.enable_tracing();
        let (r, s) = JoinWorkload::wide(1 << 14).generate(&dev);
        let spec = PipelineSpec::new(
            Algorithm::PhjUm,
            GroupKey::JoinKey,
            GroupByAlgorithm::SortGftr,
            &[AggFn::Sum; 4],
        );
        let _ = join_then_group_by(&dev, &r, &s, &spec);
        dev.take_trace().expect("tracing was enabled")
    };
    let (t1, t8) = (run(1), run(8));
    let (a, b) = (std::slice::from_ref(&t1), std::slice::from_ref(&t8));
    assert_eq!(
        jsonl(a),
        jsonl(b),
        "JSONL export differs across host_threads"
    );
    assert_eq!(
        chrome_trace_json(a),
        chrome_trace_json(b),
        "Chrome export differs across host_threads"
    );
}

#[test]
fn disabled_tracing_leaves_results_untouched() {
    let run = |traced: bool| {
        let dev = Device::new(DeviceConfig::a100().scaled(8192.0));
        if traced {
            dev.enable_tracing();
        }
        let (r, s) = JoinWorkload::wide(1 << 14).generate(&dev);
        let out = gpu_join::joins::run_join(&dev, Algorithm::PhjUm, &r, &s, &JoinConfig::default());
        (out.len(), out.stats.op.total_time(), dev.counters().cycles)
    };
    assert_eq!(
        run(false),
        run(true),
        "tracing must not perturb the simulation"
    );
}

// ---------------------------------------------------------------------------
// Multi-query sessions: interleaving must not corrupt any of the above.
// Each tenant's private trace still nests and still accounts for exactly its
// own OpStats; its ledger timeline never crosses its budget; and the base
// device's trace carries the interleaved timeline with every kernel tagged
// by its owning query.
// ---------------------------------------------------------------------------

mod multi_query {
    use super::*;
    use gpu_join::engine::scheduler::{Policy, QuerySpec};
    use gpu_join::engine::{self, AggSpec, Catalog, Expr, Plan, Table};

    const BUDGET: u64 = 1 << 22;

    fn catalog(dev: &Device) -> Catalog {
        let mut c = Catalog::new();
        c.insert(Table::new(
            "orders",
            vec![("o_id", Column::from_i32(dev, (0..128).collect(), "o_id"))],
        ));
        c.insert(Table::new(
            "lineitem",
            vec![
                (
                    "l_oid",
                    Column::from_i32(dev, (0..640).map(|i| (i * 3) % 160).collect(), "l_oid"),
                ),
                (
                    "l_qty",
                    Column::from_i64(dev, (0..640).map(|i| (i * 13) % 37).collect(), "l_qty"),
                ),
            ],
        ));
        c
    }

    fn tenant_plans() -> Vec<Plan> {
        vec![
            Plan::scan("orders")
                .join(Plan::scan("lineitem"), "o_id", "l_oid")
                .aggregate("o_id", vec![AggSpec::new(AggFn::Sum, "l_qty", "total")]),
            Plan::scan("lineitem")
                .filter(Expr::col("l_qty").gt(Expr::lit(9)))
                .distinct("l_oid"),
            Plan::scan("orders").join(Plan::scan("lineitem"), "o_id", "l_oid"),
        ]
    }

    fn run_session() -> (Vec<gpu_join::engine::scheduler::QueryReport>, Trace) {
        let dev = traced_device();
        let cat = catalog(&dev);
        let specs = tenant_plans()
            .into_iter()
            .map(|p| QuerySpec::new(p).with_budget(BUDGET))
            .collect();
        let reports = engine::run_queries(&dev, &cat, specs, Policy::RoundRobin);
        let base = dev.take_trace().expect("tracing was enabled");
        (reports, base)
    }

    #[test]
    fn per_query_spans_still_nest() {
        let (reports, _) = run_session();
        for r in &reports {
            let trace = r.trace.as_ref().expect("per-query trace present");
            let spans: Vec<&SpanEvent> = trace.spans().collect();
            assert!(!spans.is_empty());
            for (i, a) in spans.iter().enumerate() {
                for b in spans.iter().skip(i + 1) {
                    let disjoint = a.end <= b.start + NS || b.end <= a.start + NS;
                    let a_in_b = b.start <= a.start + NS && a.end <= b.end + NS;
                    let b_in_a = a.start <= b.start + NS && b.end <= a.end + NS;
                    assert!(
                        disjoint || a_in_b || b_in_a,
                        "q{}: spans overlap without nesting: {:?} vs {:?}",
                        r.query,
                        a.name,
                        b.name
                    );
                }
            }
        }
    }

    #[test]
    fn per_query_operator_spans_match_per_query_op_stats() {
        let (reports, _) = run_session();
        for r in &reports {
            let out = r.result.as_ref().expect("tenant succeeds");
            let trace = r.trace.as_ref().expect("per-query trace present");

            fn flatten(n: &gpu_join::engine::NodeStats, acc: &mut Vec<(String, f64)>) {
                acc.push((n.label.clone(), n.op.total_time().secs()));
                for c in &n.children {
                    flatten(c, acc);
                }
            }
            let mut nodes = Vec::new();
            flatten(&out.stats, &mut nodes);
            let op_spans = spans_of(trace, SpanCat::Operator);
            assert_eq!(
                op_spans.len(),
                nodes.len(),
                "q{}: one operator span per plan node",
                r.query
            );
            for (label, secs) in nodes {
                let span = op_spans
                    .iter()
                    .find(|s| s.name == label)
                    .unwrap_or_else(|| panic!("q{}: no operator span {label:?}", r.query));
                assert!(
                    (span.dur() - secs).abs() <= NS,
                    "q{}: {label}: span {}s vs OpStats::total_time {}s",
                    r.query,
                    span.dur(),
                    secs
                );
            }
            // Every OpStats in the tree is stamped with the owning query.
            fn stamped(n: &gpu_join::engine::NodeStats, q: u32) {
                assert_eq!(n.op.query, Some(q), "{}: missing query stamp", n.label);
                for c in &n.children {
                    stamped(c, q);
                }
            }
            stamped(&out.stats, r.query);
        }
    }

    #[test]
    fn ledger_timeline_never_crosses_the_budget() {
        let (reports, _) = run_session();
        for r in &reports {
            assert!(r.peak_mem_bytes <= BUDGET, "q{}: peak over budget", r.query);
            let trace = r.trace.as_ref().expect("per-query trace present");
            let samples: Vec<_> = trace.mem_samples().collect();
            assert!(
                !samples.is_empty(),
                "q{}: ledger timeline recorded",
                r.query
            );
            for m in samples {
                assert!(
                    m.high_water_bytes <= BUDGET,
                    "q{}: ledger sample at {}s shows {} bytes, budget is {BUDGET}",
                    r.query,
                    m.ts,
                    m.high_water_bytes
                );
            }
        }
    }

    #[test]
    fn metrics_totals_agree_with_the_tagged_base_trace() {
        // Run the session with the metrics recorder on as well: the
        // cumulative totals and the per-tenant dual-accounted counters
        // must reproduce what the tagged trace says, launch for launch.
        let dev = traced_device();
        dev.enable_metrics(gpu_join::sim::SimTime::from_secs(1e-6));
        let cat = catalog(&dev);
        let specs = tenant_plans()
            .into_iter()
            .map(|p| QuerySpec::new(p).with_budget(BUDGET))
            .collect();
        let reports = engine::run_queries(&dev, &cat, specs, Policy::RoundRobin);
        assert!(reports.iter().all(|r| r.result.is_ok()));
        let base = dev.take_trace().expect("tracing was enabled");
        let snap = dev.metrics_snapshot().expect("metrics recorder is on");

        assert_eq!(snap.totals.launches, base.kernels().count() as u64);
        let trace_ns: u64 = base
            .kernels()
            .map(|k| gpu_join::sim::secs_to_ticks(k.dur))
            .sum();
        assert_eq!(snap.totals.busy_ns, trace_ns);
        for r in &reports {
            let tenant = r.query.to_string();
            let labels = [("tenant", tenant.as_str())];
            let tagged: Vec<_> = base
                .kernels()
                .filter(|k| k.query == Some(r.query))
                .collect();
            assert_eq!(
                snap.registry
                    .counter("tenant_kernel_launches_total", &labels),
                tagged.len() as u64,
                "q{}: dual-accounted launch count",
                r.query
            );
            let tagged_ns: u64 = tagged
                .iter()
                .map(|k| gpu_join::sim::secs_to_ticks(k.dur))
                .sum();
            assert_eq!(
                snap.registry.counter("tenant_busy_ns_total", &labels),
                tagged_ns,
                "q{}: dual-accounted busy time",
                r.query
            );
        }
    }

    #[test]
    fn base_trace_tags_every_session_kernel_with_its_query() {
        let (reports, base) = run_session();
        // Kernels launched inside the session carry their owner's id; the
        // tagged sub-streams partition the session exactly — each query's
        // tagged kernel count and total duration equal its private trace.
        for r in &reports {
            let qtrace = r.trace.as_ref().expect("per-query trace present");
            let tagged: Vec<_> = base
                .kernels()
                .filter(|k| k.query == Some(r.query))
                .collect();
            assert_eq!(
                tagged.len(),
                qtrace.kernels().count(),
                "q{}: base-trace kernel count",
                r.query
            );
            let base_secs: f64 = tagged.iter().map(|k| k.dur).sum();
            let q_secs: f64 = qtrace.kernels().map(|k| k.dur).sum();
            assert!(
                (base_secs - q_secs).abs() <= NS,
                "q{}: base-trace kernel time {base_secs}s vs private {q_secs}s",
                r.query
            );
            assert!(
                (r.busy.secs() - q_secs).abs() <= NS,
                "q{}: reported busy {}s vs kernel time {q_secs}s",
                r.query,
                r.busy.secs()
            );
        }
        // And nothing else ran during the session: every tag is a real
        // query id (untagged kernels, if any, predate the session).
        let ids: Vec<u32> = (0..reports.len() as u32).collect();
        for k in base.kernels() {
            if let Some(q) = k.query {
                assert!(ids.contains(&q), "unknown query tag {q}");
            }
        }
    }
}
