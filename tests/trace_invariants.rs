//! Invariants of the `sim::trace` subsystem, checked end to end through
//! the real execution stack:
//!
//! * kernel-event durations account for exactly the simulated time the
//!   hardware counters report (`Counters::cycles / clock_hz`);
//! * spans nest — any two spans on a device are either disjoint or one
//!   contains the other;
//! * phase spans reproduce the reported [`PhaseTimes`], and operator spans
//!   reproduce [`OpStats::total_time`], within 1 ns of simulated time;
//! * traces are byte-identical across host-thread counts (the trace is
//!   derived under the device lock from state that is itself
//!   deterministic).

use gpu_join::prelude::*;
use gpu_join::sim::trace::{chrome_trace_json, jsonl, SpanEvent, Trace};
use gpu_join::sim::SpanCat;
use gpu_join::workloads::JoinWorkload;

/// 1 ns of simulated time — the acceptance tolerance for span sums.
const NS: f64 = 1e-9;

fn traced_device() -> Device {
    let dev = Device::new(DeviceConfig::a100().scaled(8192.0));
    dev.enable_tracing();
    dev
}

fn spans_of(trace: &Trace, cat: SpanCat) -> Vec<SpanEvent> {
    trace.spans().filter(|s| s.cat == cat).cloned().collect()
}

#[test]
fn kernel_durations_sum_to_counter_cycles() {
    for alg in [Algorithm::PhjUm, Algorithm::SmjOm, Algorithm::Nphj] {
        let dev = traced_device();
        let (r, s) = JoinWorkload::wide(1 << 14).generate(&dev);
        let _ = gpu_join::joins::run_join(&dev, alg, &r, &s, &JoinConfig::default());
        let counters = dev.counters();
        let trace = dev.take_trace().expect("tracing was enabled");

        let kernel_secs: f64 = trace.kernels().map(|k| k.dur).sum();
        let counter_secs = counters.cycles / dev.config().clock_hz;
        assert_eq!(trace.kernels().count() as u64, counters.kernel_launches);
        assert!(
            (kernel_secs - counter_secs).abs() <= counter_secs * 1e-9,
            "{alg:?}: kernel events cover {kernel_secs}s but counters say {counter_secs}s"
        );
    }
}

#[test]
fn spans_nest_without_overlap() {
    let dev = traced_device();
    let (r, s) = JoinWorkload::wide(1 << 14).generate(&dev);
    let spec = PipelineSpec::new(
        Algorithm::PhjUm,
        GroupKey::JoinKey,
        GroupByAlgorithm::SortGftr,
        &[AggFn::Sum; 4],
    );
    let _ = join_then_group_by(&dev, &r, &s, &spec);
    let trace = dev.take_trace().expect("tracing was enabled");
    let spans: Vec<&SpanEvent> = trace.spans().collect();
    assert!(spans.len() > 8, "pipeline should produce a rich span tree");

    for (i, a) in spans.iter().enumerate() {
        for b in spans.iter().skip(i + 1) {
            let disjoint = a.end <= b.start + NS || b.end <= a.start + NS;
            let a_in_b = b.start <= a.start + NS && a.end <= b.end + NS;
            let b_in_a = a.start <= b.start + NS && b.end <= a.end + NS;
            assert!(
                disjoint || a_in_b || b_in_a,
                "spans overlap without nesting: {:?} [{}, {}] vs {:?} [{}, {}]",
                a.name,
                a.start,
                a.end,
                b.name,
                b.start,
                b.end
            );
        }
    }
}

#[test]
fn phase_spans_reproduce_reported_phase_times() {
    for alg in [Algorithm::PhjUm, Algorithm::PhjOm, Algorithm::SmjUm] {
        let dev = traced_device();
        let (r, s) = JoinWorkload::wide(1 << 14).generate(&dev);
        let out = gpu_join::joins::run_join(&dev, alg, &r, &s, &JoinConfig::default());
        let trace = dev.take_trace().expect("tracing was enabled");

        let join_spans = spans_of(&trace, SpanCat::Join);
        assert_eq!(join_spans.len(), 1);
        let join = &join_spans[0];
        assert_eq!(join.name, alg.name());
        // run_join attributes every simulated instant to a phase
        // (`other` stays zero), so the covering span *is* the phase total.
        assert!(
            (join.dur() - out.stats.op.total_time().secs()).abs() <= NS,
            "{alg:?}: join span {}s vs OpStats::total_time {}s",
            join.dur(),
            out.stats.op.total_time().secs()
        );

        let phase_secs: f64 = spans_of(&trace, SpanCat::Phase)
            .iter()
            .filter(|p| join.start <= p.start + NS && p.end <= join.end + NS)
            .map(SpanEvent::dur)
            .sum();
        let reported = out.stats.phases.total().secs();
        assert!(
            (phase_secs - reported).abs() <= NS,
            "{alg:?}: phase spans sum to {phase_secs}s but PhaseTimes::total is {reported}s"
        );
    }
}

#[test]
fn operator_span_durations_match_op_stats() {
    let dev = traced_device();
    let (r, s) = JoinWorkload::wide(1 << 14).generate(&dev);
    let spec = PipelineSpec::new(
        Algorithm::PhjOm,
        GroupKey::JoinKey,
        GroupByAlgorithm::HashGlobal,
        &[AggFn::Sum; 4],
    );
    let out = join_then_group_by(&dev, &r, &s, &spec);
    let trace = dev.take_trace().expect("tracing was enabled");

    // Flatten the engine's stats tree: label -> node-only total_time.
    fn flatten(n: &gpu_join::engine::NodeStats, out: &mut Vec<(String, f64)>) {
        out.push((n.label.clone(), n.op.total_time().secs()));
        for c in &n.children {
            flatten(c, out);
        }
    }
    let mut nodes = Vec::new();
    flatten(&out.stats, &mut nodes);

    let op_spans = spans_of(&trace, SpanCat::Operator);
    assert_eq!(
        op_spans.len(),
        nodes.len(),
        "one operator span per plan node"
    );
    for (label, secs) in nodes {
        let span = op_spans
            .iter()
            .find(|s| s.name == label)
            .unwrap_or_else(|| panic!("no operator span labelled {label:?}"));
        assert!(
            (span.dur() - secs).abs() <= NS,
            "{label}: span {}s vs OpStats::total_time {}s",
            span.dur(),
            secs
        );
    }
}

#[test]
fn traces_are_byte_identical_across_host_threads() {
    let run = |threads: usize| -> Trace {
        let dev = Device::new(
            DeviceConfig::a100()
                .scaled(8192.0)
                .with_host_threads(threads),
        );
        dev.enable_tracing();
        let (r, s) = JoinWorkload::wide(1 << 14).generate(&dev);
        let spec = PipelineSpec::new(
            Algorithm::PhjUm,
            GroupKey::JoinKey,
            GroupByAlgorithm::SortGftr,
            &[AggFn::Sum; 4],
        );
        let _ = join_then_group_by(&dev, &r, &s, &spec);
        dev.take_trace().expect("tracing was enabled")
    };
    let (t1, t8) = (run(1), run(8));
    let (a, b) = (std::slice::from_ref(&t1), std::slice::from_ref(&t8));
    assert_eq!(
        jsonl(a),
        jsonl(b),
        "JSONL export differs across host_threads"
    );
    assert_eq!(
        chrome_trace_json(a),
        chrome_trace_json(b),
        "Chrome export differs across host_threads"
    );
}

#[test]
fn disabled_tracing_leaves_results_untouched() {
    let run = |traced: bool| {
        let dev = Device::new(DeviceConfig::a100().scaled(8192.0));
        if traced {
            dev.enable_tracing();
        }
        let (r, s) = JoinWorkload::wide(1 << 14).generate(&dev);
        let out = gpu_join::joins::run_join(&dev, Algorithm::PhjUm, &r, &s, &JoinConfig::default());
        (out.len(), out.stats.op.total_time(), dev.counters().cycles)
    };
    assert_eq!(
        run(false),
        run(true),
        "tracing must not perturb the simulation"
    );
}
