//! Fairness regressions for the multi-query scheduler, measured entirely in
//! simulated time. The device executes one kernel at a time (no overlap is
//! modeled), so N equal queries need exactly N× one query's busy time of
//! device clock in total; what the policy controls is *who waits*:
//!
//! * under round-robin, every one of N equal queries finishes within a
//!   small constant factor of N× its solo simulated time (nobody lags, and
//!   — unlike serial — nobody front-runs either);
//! * under a 3:1 weighted-fair split the weight-3 tenant finishes well
//!   before the weight-1 tenant.
//!
//! Finish times are taken from the base device trace — kernel events there
//! are device-timestamped and tagged with the owning query, so the metric
//! is exact and deterministic.

use gpu_join::engine::{self, AggSpec, Catalog, Expr, Plan, Table};
use gpu_join::prelude::*;
use gpu_join::sim::trace::Trace;
use gpu_join::sim::QueryId;

use engine::scheduler::{OpenQuery, Policy, QuerySpec};

fn device() -> Device {
    let dev = Device::new(DeviceConfig::a100().scaled(8192.0));
    dev.enable_tracing();
    dev
}

fn catalog(dev: &Device) -> Catalog {
    let n_orders = 192usize;
    let n_lines = 768usize;
    let mut c = Catalog::new();
    c.insert(Table::new(
        "orders",
        vec![(
            "o_id",
            Column::from_i32(dev, (0..n_orders as i32).collect(), "o_id"),
        )],
    ));
    c.insert(Table::new(
        "lineitem",
        vec![
            (
                "l_oid",
                Column::from_i32(
                    dev,
                    (0..n_lines as i32).map(|i| (i * 11) % 200).collect(),
                    "l_oid",
                ),
            ),
            (
                "l_qty",
                Column::from_i64(
                    dev,
                    (0..n_lines as i64).map(|i| (i * 17) % 53).collect(),
                    "l_qty",
                ),
            ),
        ],
    ));
    c
}

/// The workload every tenant runs: a join feeding a grouped aggregation —
/// enough kernels for the policies to interleave at fine grain.
fn tenant_plan() -> Plan {
    Plan::scan("orders")
        .join(Plan::scan("lineitem"), "o_id", "l_oid")
        .aggregate("o_id", vec![AggSpec::new(AggFn::Sum, "l_qty", "total")])
}

/// Device-clock time at which query `q` launched its last kernel work —
/// its deterministic finish time on the shared timeline.
fn finish_time(base_trace: &Trace, q: QueryId) -> f64 {
    base_trace
        .kernels()
        .filter(|k| k.query == Some(q))
        .map(|k| k.start + k.dur)
        .fold(0.0, f64::max)
}

/// One query's solo simulated busy time under the same budget regime.
fn solo_busy() -> f64 {
    let dev = device();
    let cat = catalog(&dev);
    let reports = engine::run_queries(
        &dev,
        &cat,
        vec![QuerySpec::new(tenant_plan())],
        Policy::Serial,
    );
    assert!(reports[0].result.is_ok());
    reports[0].busy.secs()
}

#[test]
fn round_robin_bounds_every_equal_tenant_near_n_times_solo() {
    let solo = solo_busy();
    let n = 4usize;
    let dev = device();
    let cat = catalog(&dev);
    let specs = vec![QuerySpec::new(tenant_plan()); n];
    let reports = engine::run_queries(&dev, &cat, specs, Policy::RoundRobin);
    let trace = dev.take_trace().expect("tracing was enabled");

    for r in &reports {
        assert!(
            r.result.is_ok(),
            "q{}: {:?}",
            r.query,
            r.result.as_ref().err()
        );
        // Each tenant's own kernel time is unchanged by co-tenancy.
        assert_eq!(
            r.busy.secs().to_bits(),
            solo.to_bits(),
            "q{}: busy time must equal solo busy time",
            r.query
        );
    }

    let finishes: Vec<f64> = (0..n as u32).map(|q| finish_time(&trace, q)).collect();
    let slowest = finishes.iter().cloned().fold(0.0, f64::max);
    let fastest = finishes.iter().cloned().fold(f64::INFINITY, f64::min);
    // The headline bound: the slowest of N equal queries finishes within a
    // small constant factor of N× its solo time (it is exactly N× here —
    // the device runs one kernel at a time — but the regression bound
    // leaves slack for cost-model evolution).
    assert!(
        slowest <= 1.5 * n as f64 * solo,
        "slowest tenant finished at {slowest}s, solo time is {solo}s (N={n})"
    );
    // And the fairness half: round-robin means nobody front-runs — even
    // the first finisher has waited through nearly everyone else's work.
    assert!(
        fastest >= (n - 1) as f64 * solo,
        "fastest tenant finished at {fastest}s — interleaving should hold \
         it back to at least (N-1)× solo ({}s)",
        (n - 1) as f64 * solo
    );
}

#[test]
fn serial_front_runs_while_round_robin_interleaves() {
    let solo = solo_busy();
    let n = 3usize;
    let run = |policy: Policy| {
        let dev = device();
        let cat = catalog(&dev);
        let specs = vec![QuerySpec::new(tenant_plan()); n];
        let reports = engine::run_queries(&dev, &cat, specs, policy);
        assert!(reports.iter().all(|r| r.result.is_ok()));
        let trace = dev.take_trace().expect("tracing was enabled");
        finish_time(&trace, 0)
    };
    // Serially, query 0 owns the device and finishes in its solo time;
    // round-robin makes it share, pushing its finish towards N× solo.
    let serial_q0 = run(Policy::Serial);
    let rr_q0 = run(Policy::RoundRobin);
    assert!(
        (serial_q0 - solo).abs() <= solo * 1e-9,
        "serial q0 should finish in its solo time ({solo}s), got {serial_q0}s"
    );
    assert!(
        rr_q0 >= (n - 1) as f64 * solo,
        "round-robin q0 should finish near N× solo, got {rr_q0}s vs solo {solo}s"
    );
}

#[test]
fn weighted_fair_three_to_one_skews_completion_order() {
    let solo = solo_busy();
    let run = |w0: f64, w1: f64| {
        let dev = device();
        let cat = catalog(&dev);
        let specs = vec![
            QuerySpec::new(tenant_plan()).with_weight(w0),
            QuerySpec::new(tenant_plan()).with_weight(w1),
        ];
        let reports = engine::run_queries(&dev, &cat, specs, Policy::WeightedFair);
        assert!(reports.iter().all(|r| r.result.is_ok()));
        let trace = dev.take_trace().expect("tracing was enabled");
        (finish_time(&trace, 0), finish_time(&trace, 1))
    };

    // 3:1 — the heavy tenant finishes first, and early: it receives ~3/4
    // of the device while contending, so it finishes near 4/3× solo while
    // the light tenant drains the remainder at ~2× solo.
    let (heavy, light) = run(3.0, 1.0);
    assert!(
        heavy < light,
        "weight-3 tenant must finish before weight-1 ({heavy}s vs {light}s)"
    );
    assert!(
        heavy <= 1.7 * solo,
        "weight-3 tenant should finish near 4/3× solo ({solo}s), got {heavy}s"
    );
    assert!(
        light >= 1.8 * solo,
        "weight-1 tenant drains last, near 2× solo ({solo}s), got {light}s"
    );

    // Swapping the weights swaps the completion order: the skew comes from
    // the policy, not from query ids.
    let (light2, heavy2) = run(1.0, 3.0);
    assert!(
        heavy2 < light2,
        "swapped weights must swap completion order ({heavy2}s vs {light2}s)"
    );
}

/// A cheap single-table filter: the "short" class for the SJF tests.
fn short_plan() -> Plan {
    Plan::scan("lineitem").filter(Expr::col("l_qty").gt(Expr::lit(26)))
}

/// Solo simulated busy time of an arbitrary plan on a fresh device.
fn solo_busy_of(plan: Plan) -> f64 {
    let dev = device();
    let cat = catalog(&dev);
    let reports = engine::run_queries(&dev, &cat, vec![QuerySpec::new(plan)], Policy::Serial);
    assert!(reports[0].result.is_ok());
    reports[0].busy.secs()
}

#[test]
fn sjf_short_class_p99_beats_fifo_under_mixed_load() {
    // Calibrate the two service classes, then offer ~2x the device's
    // capacity so the queue builds: every 4th arrival is the long
    // join+aggregate, the rest are cheap filters.
    let s_short = solo_busy_of(short_plan());
    let s_long = solo_busy_of(tenant_plan());
    assert!(
        s_long > 2.0 * s_short,
        "classes must be visibly different (short {s_short}s, long {s_long}s)"
    );
    let n = 24usize;
    let mean_work = (s_long + 3.0 * s_short) / 4.0;
    let gap = mean_work / 2.0; // offered load = 2x capacity

    let run = |policy: Policy| -> (f64, u64) {
        let dev = Device::new(DeviceConfig::a100().scaled(8192.0));
        dev.enable_metrics(SimTime::from_secs(1e-9));
        let cat = catalog(&dev);
        let t0 = dev.elapsed().secs();
        let arrivals = (0..n)
            .map(|i| {
                let (class, plan) = if i % 4 == 0 {
                    ("long", tenant_plan())
                } else {
                    ("short", short_plan())
                };
                OpenQuery::new(
                    SimTime::from_secs(t0 + i as f64 * gap),
                    class,
                    QuerySpec::new(plan),
                )
            })
            .collect();
        let reports = engine::run_open_loop(&dev, &cat, arrivals, policy);
        assert!(
            reports.iter().all(|r| r.result.is_ok()),
            "{policy:?}: unbounded queue must complete everything"
        );
        let snap = dev.metrics_snapshot().expect("metrics recorder is on");
        let p99 = snap
            .registry
            .histogram("query_latency_seconds", &[("class", "short")])
            .expect("short-class latency histogram")
            .quantile(0.99);
        let completed = snap
            .registry
            .counter("query_completed_total", &[("class", "short")])
            + snap
                .registry
                .counter("query_completed_total", &[("class", "long")]);
        (p99, completed)
    };

    // Serial is arrival-order service — the FIFO baseline.
    let (fifo_p99, fifo_completed) = run(Policy::Serial);
    let (sjf_p99, sjf_completed) = run(Policy::Sjf);

    // Goodput first: same offered work, same completions — SJF must not
    // buy its latency win by dropping anything.
    assert_eq!(fifo_completed, n as u64);
    assert_eq!(
        sjf_completed, n as u64,
        "goodput must not regress under SJF"
    );
    // The headline service-level bound: past saturation, letting shorts
    // overtake queued longs must cut the short class's tail latency — by a
    // margin far above the histogram's <=1% quantile error.
    assert!(
        sjf_p99 < 0.9 * fifo_p99,
        "short-class p99 under SJF ({sjf_p99}) must beat FIFO ({fifo_p99})"
    );
}

#[test]
fn aging_bounds_the_longest_jobs_completion() {
    // The aging divisor is `1 + wait_seconds`, so waits must reach whole
    // simulated seconds to matter. Throttling DRAM and L2 bandwidth by 1e9
    // stretches these byte-bound queries from microseconds to seconds
    // without touching capacities (so admission maths are unchanged).
    let slow = || {
        let mut cfg = DeviceConfig::a100().scaled(8192.0);
        cfg.mem_bandwidth /= 1e9;
        cfg.l2_bandwidth /= 1e9;
        Device::new(cfg)
    };
    let solo = |plan: Plan| -> f64 {
        let dev = slow();
        let cat = catalog(&dev);
        let reports = engine::run_queries(&dev, &cat, vec![QuerySpec::new(plan)], Policy::Serial);
        assert!(reports[0].result.is_ok());
        reports[0].busy.secs()
    };
    let s_short = solo(short_plan());
    let s_long = solo(tenant_plan());
    assert!(
        s_short > 0.1 && s_long > 2.0 * s_short,
        "slow device must stretch service into seconds (short {s_short}s, long {s_long}s)"
    );

    // One long job at t0, then a near-saturating stream of shorts (~0.9
    // utilization from the shorts alone). Under pure SJF the statically
    // cheaper shorts win every redesignation, so the long job runs only in
    // the slivers between them and finishes dead last. Under aging its
    // rank has decayed below a fresh short's by the time the first short
    // even arrives (wait ≈ gap seconds against a predicted-cost ratio of a
    // few), so it holds the device and completes mid-stream. The stream
    // stays under saturation on purpose: queued shorts age at the same
    // rate as the long, so aging only lets it overtake *fresh* arrivals —
    // past saturation the backlog never empties and nothing changes.
    let n_short = 10usize;
    let gap = 1.1 * s_short;
    let run = |policy: Policy| -> Vec<f64> {
        let dev = slow();
        let cat = catalog(&dev);
        let t0 = dev.elapsed().secs();
        let mut arrivals = vec![OpenQuery::new(
            SimTime::from_secs(t0),
            "long",
            QuerySpec::new(tenant_plan()),
        )];
        arrivals.extend((0..n_short).map(|k| {
            OpenQuery::new(
                SimTime::from_secs(t0 + (k + 1) as f64 * gap),
                "short",
                QuerySpec::new(short_plan()),
            )
        }));
        let reports = engine::run_open_loop(&dev, &cat, arrivals, policy);
        assert!(reports.iter().all(|r| r.result.is_ok()));
        reports.iter().map(|r| r.completion.secs()).collect()
    };

    let sjf = run(Policy::Sjf);
    let aging = run(Policy::SjfAging);

    // Pure SJF starves the long job to the very end of the session.
    let sjf_last_short = sjf[1..].iter().cloned().fold(0.0, f64::max);
    assert!(
        sjf[0] > sjf_last_short,
        "under SJF the long job must finish last ({}s vs last short {}s)",
        sjf[0],
        sjf_last_short
    );
    // Aging bounds that starvation: the long job's rank decays with its
    // wait, so it overtakes fresh shorts mid-stream and finishes strictly
    // earlier than under pure SJF...
    assert!(
        aging[0] < sjf[0],
        "aging must finish the long job earlier than SJF ({}s vs {}s)",
        aging[0],
        sjf[0]
    );
    // ...and, concretely, no longer dead last: shorts are still completing
    // after it.
    let aging_last_short = aging[1..].iter().cloned().fold(0.0, f64::max);
    assert!(
        aging[0] < aging_last_short,
        "under aging the long job must not finish last ({}s vs last short {}s)",
        aging[0],
        aging_last_short
    );
}
