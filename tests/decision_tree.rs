//! Validate the Figure 18 decision trees against measured outcomes: over a
//! grid of workload shapes, the recommended implementation must land within
//! a small factor of the measured best. (The tree is a heuristic — the
//! paper itself notes TPC-grade inputs are "highly non-trivial to predict" —
//! so we assert near-optimality, not exact winner prediction.)

use gpu_join::prelude::*;
use gpu_join::workloads::JoinWorkload;

/// Paper regime at test-friendly sizes: shrink the L2 so 2^19-row payload
/// columns (2 MB) dwarf it, the way 2^27-row columns dwarf a real A100's.
fn test_device() -> Device {
    let mut cfg = DeviceConfig::rtx3090();
    cfg.l2_bytes = 256 << 10;
    Device::new(cfg)
}

fn run_grid_case(wide: bool, match_ratio: f64, zipf: f64) {
    let dev = test_device();
    let n = 1 << 19;
    let w = JoinWorkload {
        r_payloads: vec![DType::I32; if wide { 3 } else { 1 }],
        s_payloads: vec![DType::I32; if wide { 3 } else { 1 }],
        match_ratio,
        zipf,
        ..JoinWorkload::narrow(n)
    };
    let (r, s) = w.generate(&dev);
    let config = JoinConfig::default();

    let mut best: Option<(Algorithm, f64)> = None;
    let mut measured = Vec::new();
    for alg in Algorithm::GPU_VARIANTS {
        let t = joins::run_join(&dev, alg, &r, &s, &config)
            .stats
            .phases
            .total()
            .secs();
        measured.push((alg, t));
        if best.is_none_or(|(_, bt)| t < bt) {
            best = Some((alg, t));
        }
    }
    let (best_alg, best_t) = best.expect("measured all variants");

    let profile = profile_of(&r, &s, match_ratio, zipf, dev.config().l2_bytes);
    let rec = choose_join(&profile);
    let rec_t = measured
        .iter()
        .find(|(a, _)| *a == rec.algorithm)
        .map(|(_, t)| *t)
        .expect("recommendation is a GPU variant");

    assert!(
        rec_t <= best_t * 1.35,
        "wide={wide} match={match_ratio} zipf={zipf}: tree picked {} ({rec_t:.6}s) but \
         {} won ({best_t:.6}s); measurements: {measured:?}",
        rec.algorithm,
        best_alg,
    );
}

#[test]
fn wide_full_match_uniform() {
    run_grid_case(true, 1.0, 0.0);
}

#[test]
fn wide_low_match_uniform() {
    run_grid_case(true, 0.1, 0.0);
}

#[test]
fn wide_full_match_skewed() {
    run_grid_case(true, 1.0, 1.5);
}

#[test]
fn narrow_full_match_uniform() {
    run_grid_case(false, 1.0, 0.0);
}

#[test]
fn narrow_skewed() {
    run_grid_case(false, 1.0, 1.5);
}

#[test]
fn smj_subtree_predicts_materialization_winner() {
    // Figure 18b: wide 4-byte, high match, uniform, large -> SMJ-OM;
    // low match -> SMJ-UM.
    let dev = test_device();
    let wide = JoinWorkload {
        r_payloads: vec![DType::I32; 3],
        s_payloads: vec![DType::I32; 3],
        ..JoinWorkload::narrow(1 << 19)
    };
    let (r, s) = wide.generate(&dev);
    let um = joins::run_join(&dev, Algorithm::SmjUm, &r, &s, &JoinConfig::default());
    let om = joins::run_join(&dev, Algorithm::SmjOm, &r, &s, &JoinConfig::default());
    let profile = profile_of(&r, &s, 1.0, 0.0, dev.config().l2_bytes);
    let rec = choose_smj(&profile);
    assert_eq!(rec.algorithm, Algorithm::SmjOm);
    assert!(
        om.stats.phases.total() < um.stats.phases.total(),
        "measured agreement with the subtree: OM {} vs UM {}",
        om.stats.phases.total(),
        um.stats.phases.total()
    );

    let low = JoinWorkload {
        match_ratio: 0.05,
        ..wide.clone()
    };
    let (r, s) = low.generate(&dev);
    let um = joins::run_join(&dev, Algorithm::SmjUm, &r, &s, &JoinConfig::default());
    let om = joins::run_join(&dev, Algorithm::SmjOm, &r, &s, &JoinConfig::default());
    let profile = profile_of(&r, &s, 0.05, 0.0, dev.config().l2_bytes);
    assert_eq!(choose_smj(&profile).algorithm, Algorithm::SmjUm);
    assert!(
        um.stats.phases.total() < om.stats.phases.total(),
        "low match ratio: UM {} must beat OM {}",
        um.stats.phases.total(),
        om.stats.phases.total()
    );
}
