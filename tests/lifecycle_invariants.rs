//! Request-scoped observability invariants over the serving path:
//!
//! * **partition identity** — each completed query's lifecycle spans tile
//!   `[arrival, completion]` exactly: tick-quantized
//!   `queue_wait + planning + Σ exec_slices + Σ interference` equals
//!   `completion - arrival` to the nanosecond, under every policy and
//!   host-thread count;
//! * **terminal spans** — shed queries record exactly `arrival` + `shed`
//!   (no queued/exec/interference spans), and pre-registration rejections
//!   record `arrival` + `rejected` with no query id;
//! * **digest byte-identity** — the slow-query digest (JSON and text) and
//!   the lifecycle trace are byte-identical across host-thread counts
//!   under every policy;
//! * **zero observer effect** — enabling tracing changes no observable:
//!   per-query timestamps and the full metrics export are byte-identical
//!   to an untraced run;
//! * **flight recorder** — a ring-capacity trace never exceeds its
//!   capacity and accounts every dropped event in
//!   `trace_events_dropped_total`.

use gpu_join::engine::scheduler::{OpenQuery, Policy, QuerySpec, ServingConfig};
use gpu_join::engine::{self, slow_queries, Catalog, EngineError, Expr, Plan, Table};
use gpu_join::prelude::*;
use gpu_join::sim::{metrics_json, secs_to_ticks, LifecycleStage, MetricsSnapshot, Trace};

fn device(threads: usize) -> Device {
    let dev = Device::new(
        DeviceConfig::a100()
            .scaled(8192.0)
            .with_host_threads(threads),
    );
    dev.enable_metrics(SimTime::from_secs(1e-9));
    dev.enable_tracing();
    dev
}

fn catalog(dev: &Device) -> Catalog {
    let mut c = Catalog::new();
    c.insert(Table::new(
        "orders",
        vec![("o_id", Column::from_i32(dev, (0..128).collect(), "o_id"))],
    ));
    c.insert(Table::new(
        "lineitem",
        vec![
            (
                "l_oid",
                Column::from_i32(dev, (0..640).map(|i| (i * 3) % 160).collect(), "l_oid"),
            ),
            (
                "l_qty",
                Column::from_i64(dev, (0..640).map(|i| (i * 13) % 37).collect(), "l_qty"),
            ),
        ],
    ));
    c
}

fn plan_of(i: usize) -> Plan {
    match i % 3 {
        0 => Plan::scan("orders").join(Plan::scan("lineitem"), "o_id", "l_oid"),
        1 => Plan::scan("lineitem").filter(Expr::col("l_qty").gt(Expr::lit(9))),
        _ => Plan::scan("lineitem").distinct("l_oid"),
    }
}

/// Nine bursty arrivals across three classes: gaps small enough that
/// queries overlap (so interference spans exist) under every policy.
fn arrivals() -> Vec<OpenQuery> {
    (0..9)
        .map(|i| {
            OpenQuery::new(
                SimTime::from_secs(i as f64 * 1e-9),
                ["a", "b", "c"][i % 3],
                QuerySpec::new(plan_of(i)),
            )
        })
        .collect()
}

fn session(
    threads: usize,
    policy: Policy,
    serving: &ServingConfig,
) -> (Trace, MetricsSnapshot, Vec<engine::QueryReport>) {
    let dev = device(threads);
    let cat = catalog(&dev);
    let reports = engine::run_open_loop_with(&dev, &cat, arrivals(), policy, serving);
    let trace = dev.take_trace().expect("tracing was enabled");
    let snap = dev.metrics_snapshot().expect("metrics were enabled");
    (trace, snap, reports)
}

const POLICIES: [Policy; 3] = [Policy::Serial, Policy::Sjf, Policy::SjfAging];

/// Tick-quantized stage sums per query id out of a lifecycle trace:
/// `(queue, exec, interference, completion - arrival)`.
fn stage_sums(trace: &Trace) -> Vec<(u32, u64, u64, u64, u64)> {
    type Acc = (u32, u64, u64, u64, Option<u64>, Option<u64>);
    let mut out: Vec<Acc> = Vec::new();
    for ev in trace.lifecycles() {
        let Some(q) = ev.query else { continue };
        let slot = match out.iter_mut().find(|r| r.0 == q) {
            Some(s) => s,
            None => {
                out.push((q, 0, 0, 0, None, None));
                out.last_mut().unwrap()
            }
        };
        let dur = secs_to_ticks(ev.end).saturating_sub(secs_to_ticks(ev.start));
        match ev.stage {
            LifecycleStage::Queued => slot.1 += dur,
            LifecycleStage::ExecSlice => slot.2 += dur,
            LifecycleStage::Interference => slot.3 += dur,
            LifecycleStage::Arrival => slot.4 = Some(secs_to_ticks(ev.start)),
            LifecycleStage::Complete => slot.5 = Some(secs_to_ticks(ev.end)),
            _ => {}
        }
    }
    out.into_iter()
        .filter_map(|(q, queue, exec, interf, arr, done)| {
            Some((q, queue, exec, interf, done? - arr?))
        })
        .collect()
}

#[test]
fn lifecycle_spans_partition_latency_exactly() {
    for policy in POLICIES {
        for threads in [1usize, 8] {
            let (trace, _, reports) = session(threads, policy, &ServingConfig::new());
            assert!(reports.iter().all(|r| r.result.is_ok()));
            let sums = stage_sums(&trace);
            assert_eq!(
                sums.len(),
                reports.len(),
                "{policy:?}/{threads}: every completed query has a full lifecycle"
            );
            for &(q, queue, exec, interf, latency) in &sums {
                // planning is charge-free by construction, so the three
                // recorded span families must account for every tick.
                assert_eq!(
                    queue + exec + interf,
                    latency,
                    "{policy:?}/{threads}: q{q} spans must tile [arrival, completion] \
                     (queue {queue} + exec {exec} + interference {interf} != {latency})"
                );
            }
            // The schedule is bursty: at least one query must actually
            // have waited on a co-tenant, or the identity is vacuous.
            assert!(
                sums.iter().any(|(_, q, _, i, _)| *q + *i > 0),
                "{policy:?}/{threads}: bursty arrivals must produce some waiting"
            );
        }
    }
}

#[test]
fn shed_and_rejected_record_terminal_spans_and_never_execute() {
    let dev = device(1);
    let cat = catalog(&dev);
    let free = dev.mem_capacity() - dev.mem_report().current_bytes;
    let t0 = SimTime::ZERO;
    let mut arr: Vec<OpenQuery> = (0..6)
        .map(|_| {
            OpenQuery::new(
                t0,
                "burst",
                QuerySpec::new(plan_of(0)).with_budget(free * 2 / 5),
            )
        })
        .collect();
    arr.extend((0..2).map(|_| {
        OpenQuery::new(
            t0,
            "doomed",
            QuerySpec::new(plan_of(0)).with_budget(4 << 10),
        )
    }));
    let serving = ServingConfig::new().with_total_depth(1).with_memory_gate();
    let reports = engine::run_open_loop_with(&dev, &cat, arr, Policy::Sjf, &serving);
    let trace = dev.take_trace().expect("tracing was enabled");

    let shed_ids: Vec<u32> = reports
        .iter()
        .filter_map(|r| match &r.result {
            Err(EngineError::QueueShed { query }) => Some(*query),
            _ => None,
        })
        .collect();
    let rejected = reports
        .iter()
        .filter(|r| matches!(r.result, Err(EngineError::AdmissionRejected { .. })))
        .count();
    assert!(!shed_ids.is_empty(), "the burst must shed");
    assert_eq!(rejected, 2, "the gate must refuse both doomed arrivals");

    for id in &shed_ids {
        let stages: Vec<LifecycleStage> = trace
            .lifecycles()
            .filter(|e| e.query == Some(*id))
            .map(|e| e.stage)
            .collect();
        assert_eq!(
            stages,
            vec![LifecycleStage::Arrival, LifecycleStage::Shed],
            "q{id}: a shed query records exactly arrival + shed — no spans, no slices"
        );
    }
    // Pre-registration rejections have no device query id: their terminal
    // spans carry `query: None`.
    let anon: Vec<LifecycleStage> = trace
        .lifecycles()
        .filter(|e| e.query.is_none())
        .map(|e| e.stage)
        .collect();
    assert_eq!(
        anon,
        vec![
            LifecycleStage::Arrival,
            LifecycleStage::Rejected,
            LifecycleStage::Arrival,
            LifecycleStage::Rejected,
        ],
        "each rejected arrival records arrival + rejected with query: None"
    );
}

#[test]
fn digest_and_lifecycle_trace_are_byte_identical_across_host_threads() {
    // SLO of zero seconds marks every completed query slow, so the digest
    // exercises attribution for the full population.
    let serving = ServingConfig::new()
        .with_slo("a", 0.0)
        .with_slo("b", 0.0)
        .with_slo("c", 0.0);
    for policy in POLICIES {
        let run = |threads: usize| -> (String, String, String) {
            let (trace, snap, reports) = session(threads, policy, &serving);
            let explains: Vec<_> = reports
                .iter()
                .filter_map(|r| r.explain.clone().map(|e| (r.query, e)))
                .collect();
            let digest = slow_queries(&trace, &snap, &explains);
            let lifecycle_lines: String = gpu_join::sim::trace::jsonl(&[trace])
                .lines()
                .filter(|l| l.contains("\"lifecycle\""))
                .collect::<Vec<_>>()
                .join("\n");
            (digest.to_json(), digest.render(), lifecycle_lines)
        };
        let (json1, text1, trace1) = run(1);
        let (json8, text8, trace8) = run(8);
        assert!(
            !trace1.is_empty(),
            "{policy:?}: lifecycle events were traced"
        );
        assert_eq!(
            json1, json8,
            "{policy:?}: digest JSON differs across threads"
        );
        assert_eq!(
            text1, text8,
            "{policy:?}: digest text differs across threads"
        );
        assert_eq!(
            trace1, trace8,
            "{policy:?}: lifecycle trace differs across threads"
        );
    }
}

#[test]
fn tracing_perturbs_no_observable() {
    for policy in POLICIES {
        let run = |tracing: bool| {
            let dev = Device::new(DeviceConfig::a100().scaled(8192.0));
            dev.enable_metrics(SimTime::from_secs(1e-9));
            if tracing {
                dev.enable_tracing();
            }
            let cat = catalog(&dev);
            let reports = engine::run_open_loop_with(
                &dev,
                &cat,
                arrivals(),
                policy,
                &ServingConfig::new().with_slo("a", 1e-6),
            );
            let stamps: Vec<(u32, u64, u64, u64, u64)> = reports
                .iter()
                .map(|r| {
                    (
                        r.query,
                        secs_to_ticks(r.arrival.secs()),
                        secs_to_ticks(r.admitted.secs()),
                        secs_to_ticks(r.started.secs()),
                        secs_to_ticks(r.completion.secs()),
                    )
                })
                .collect();
            let export = metrics_json(&[dev.metrics_snapshot().unwrap()]);
            (stamps, export)
        };
        let (stamps_off, export_off) = run(false);
        let (stamps_on, export_on) = run(true);
        assert_eq!(
            stamps_off, stamps_on,
            "{policy:?}: tracing must not move any lifecycle timestamp"
        );
        assert_eq!(
            export_off, export_on,
            "{policy:?}: tracing must not change the metrics export"
        );
    }
}

#[test]
fn flight_recorder_caps_events_and_counts_drops() {
    let dev = Device::new(DeviceConfig::a100().scaled(8192.0));
    dev.enable_metrics(SimTime::from_secs(1e-9));
    dev.enable_tracing_ring(8);
    let cat = catalog(&dev);
    let reports = engine::run_open_loop_with(
        &dev,
        &cat,
        arrivals(),
        Policy::Serial,
        &ServingConfig::new(),
    );
    assert!(reports.iter().all(|r| r.result.is_ok()));
    let snap = dev.metrics_snapshot().expect("metrics were enabled");
    let trace = dev.take_trace().expect("ring tracing was enabled");
    assert!(
        trace.events.len() <= 8,
        "ring capacity must bound retained events (got {})",
        trace.events.len()
    );
    assert!(
        trace.dropped_events() > 0,
        "a 9-query session overflows 8 slots"
    );
    assert_eq!(
        snap.registry.counter("trace_events_dropped_total", &[]),
        trace.dropped_events(),
        "every dropped event is accounted in trace_events_dropped_total"
    );
}
