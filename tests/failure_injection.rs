//! Failure injection: the simulator surfaces the same hard edges a real GPU
//! deployment hits — out-of-memory on undersized devices, invalid gather
//! maps, mismatched schemas.

use gpu_join::prelude::*;
use gpu_join::workloads::JoinWorkload;
use std::panic::AssertUnwindSafe;

/// A device too small for the intermediate state of a wide join.
fn tiny_device() -> Executor {
    let mut cfg = DeviceConfig::a100();
    cfg.global_mem_bytes = 1 << 20; // 1 MiB
    Executor::with_config(cfg)
}

#[test]
fn join_oom_panics_with_allocation_context() {
    let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
        let exec = tiny_device();
        let (r, s) = JoinWorkload::wide(1 << 16).generate(exec.device());
        exec.join(Algorithm::PhjOm, &r, &s, &JoinConfig::default())
    }));
    let err = match result {
        Ok(_) => panic!("a 1 MiB device cannot hold this join"),
        Err(e) => e,
    };
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default();
    assert!(
        msg.contains("device out of memory"),
        "panic should identify the OOM, got: {msg}"
    );
}

#[test]
fn workload_that_fits_barely_succeeds() {
    // Same device, much smaller join: must complete.
    let exec = tiny_device();
    let (r, s) = JoinWorkload::narrow(1 << 8).generate(exec.device());
    let out = exec.join(Algorithm::PhjOm, &r, &s, &JoinConfig::default());
    assert_eq!(out.len(), 1 << 9);
}

#[test]
fn mismatched_key_types_rejected_for_every_algorithm() {
    let exec = Executor::a100();
    let dev = exec.device();
    let r = Relation::new("R", Column::from_i32(dev, vec![1], "k"), vec![]);
    let s = Relation::new("S", Column::from_i64(dev, vec![1], "k"), vec![]);
    for alg in [
        Algorithm::SmjUm,
        Algorithm::SmjOm,
        Algorithm::PhjUm,
        Algorithm::PhjOm,
        Algorithm::Nphj,
        Algorithm::CpuRadix,
    ] {
        let res = std::panic::catch_unwind(AssertUnwindSafe(|| {
            joins::run_join(dev, alg, &r, &s, &JoinConfig::default())
        }));
        assert!(res.is_err(), "{alg} must reject mixed key types");
    }
}

#[test]
fn aggregation_spec_arity_checked() {
    let exec = Executor::a100();
    let dev = exec.device();
    let input = Relation::new(
        "T",
        Column::from_i32(dev, vec![1, 2], "k"),
        vec![Column::from_i32(dev, vec![3, 4], "v")],
    );
    let res = std::panic::catch_unwind(AssertUnwindSafe(|| {
        exec.group_by(
            GroupByAlgorithm::HashGlobal,
            &input,
            &[AggFn::Sum, AggFn::Sum], // two aggs, one payload
            &GroupByConfig::default(),
        )
    }));
    assert!(res.is_err(), "arity mismatch must be rejected");
}

#[test]
fn ledger_balances_after_oom_unwind() {
    // After an OOM panic unwinds, dropped buffers must leave the ledger
    // balanced (no phantom allocations).
    let exec = tiny_device();
    let dev = exec.device().clone();
    let _ = std::panic::catch_unwind(AssertUnwindSafe(|| {
        let (r, s) = JoinWorkload::wide(1 << 16).generate(&dev);
        joins::run_join(&dev, Algorithm::SmjOm, &r, &s, &JoinConfig::default())
    }));
    assert_eq!(
        dev.mem_report().current_bytes,
        0,
        "all buffers must be released during unwind"
    );
    assert_eq!(dev.mem_report().live_allocations, 0);
}
