//! Failure injection: the simulator surfaces the same hard edges a real GPU
//! deployment hits — out-of-memory on undersized devices, invalid gather
//! maps, mismatched schemas.

use gpu_join::prelude::*;
use gpu_join::workloads::JoinWorkload;
use std::panic::AssertUnwindSafe;

/// A device too small for the intermediate state of a wide join.
fn tiny_device() -> Executor {
    let mut cfg = DeviceConfig::a100();
    cfg.global_mem_bytes = 1 << 20; // 1 MiB
    Executor::with_config(cfg)
}

#[test]
fn join_oom_panics_with_allocation_context() {
    let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
        let exec = tiny_device();
        let (r, s) = JoinWorkload::wide(1 << 16).generate(exec.device());
        exec.join(Algorithm::PhjOm, &r, &s, &JoinConfig::default())
    }));
    let err = match result {
        Ok(_) => panic!("a 1 MiB device cannot hold this join"),
        Err(e) => e,
    };
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default();
    assert!(
        msg.contains("device out of memory"),
        "panic should identify the OOM, got: {msg}"
    );
}

#[test]
fn workload_that_fits_barely_succeeds() {
    // Same device, much smaller join: must complete.
    let exec = tiny_device();
    let (r, s) = JoinWorkload::narrow(1 << 8).generate(exec.device());
    let out = exec.join(Algorithm::PhjOm, &r, &s, &JoinConfig::default());
    assert_eq!(out.len(), 1 << 9);
}

#[test]
fn mismatched_key_types_rejected_for_every_algorithm() {
    let exec = Executor::a100();
    let dev = exec.device();
    let r = Relation::new("R", Column::from_i32(dev, vec![1], "k"), vec![]);
    let s = Relation::new("S", Column::from_i64(dev, vec![1], "k"), vec![]);
    for alg in [
        Algorithm::SmjUm,
        Algorithm::SmjOm,
        Algorithm::PhjUm,
        Algorithm::PhjOm,
        Algorithm::Nphj,
        Algorithm::CpuRadix,
    ] {
        let res = std::panic::catch_unwind(AssertUnwindSafe(|| {
            joins::run_join(dev, alg, &r, &s, &JoinConfig::default())
        }));
        assert!(res.is_err(), "{alg} must reject mixed key types");
    }
}

#[test]
fn aggregation_spec_arity_checked() {
    let exec = Executor::a100();
    let dev = exec.device();
    let input = Relation::new(
        "T",
        Column::from_i32(dev, vec![1, 2], "k"),
        vec![Column::from_i32(dev, vec![3, 4], "v")],
    );
    let res = std::panic::catch_unwind(AssertUnwindSafe(|| {
        exec.group_by(
            GroupByAlgorithm::HashGlobal,
            &input,
            &[AggFn::Sum, AggFn::Sum], // two aggs, one payload
            &GroupByConfig::default(),
        )
    }));
    assert!(res.is_err(), "arity mismatch must be rejected");
}

#[test]
fn ledger_balances_after_oom_unwind() {
    // After an OOM panic unwinds, dropped buffers must leave the ledger
    // balanced (no phantom allocations).
    let exec = tiny_device();
    let dev = exec.device().clone();
    let _ = std::panic::catch_unwind(AssertUnwindSafe(|| {
        let (r, s) = JoinWorkload::wide(1 << 16).generate(&dev);
        joins::run_join(&dev, Algorithm::SmjOm, &r, &s, &JoinConfig::default())
    }));
    assert_eq!(
        dev.mem_report().current_bytes,
        0,
        "all buffers must be released during unwind"
    );
    assert_eq!(dev.mem_report().live_allocations, 0);
}

// ---------------------------------------------------------------------------
// Multi-query budget failures: a tenant that cannot live within its memory
// budget fails (or spills out-of-core) *alone* — with a typed engine error,
// a ledger that never crossed the budget, and co-tenants whose results and
// peak-memory ledgers are identical to running them single-query.
// ---------------------------------------------------------------------------

use gpu_join::engine::scheduler::{OpenQuery, Policy, QuerySpec, ServingConfig};
use gpu_join::engine::{self, AggSpec, Catalog, EngineError, Expr, NodeStats, Plan, Table};

/// Catalog with one join pair plus a table wide enough that materializing a
/// filter over it cannot fit a deliberately tiny budget.
fn sched_catalog(dev: &Device) -> Catalog {
    let mut c = Catalog::new();
    c.insert(Table::new(
        "orders",
        vec![("o_id", Column::from_i32(dev, (0..128).collect(), "o_id"))],
    ));
    c.insert(Table::new(
        "lineitem",
        vec![
            (
                "l_oid",
                Column::from_i32(dev, (0..512).map(|i| (i * 3) % 150).collect(), "l_oid"),
            ),
            (
                "l_qty",
                Column::from_i64(dev, (0..512).map(|i| (i * 7) % 29).collect(), "l_qty"),
            ),
        ],
    ));
    c.insert(Table::new(
        "big",
        vec![("v", Column::from_i64(dev, (0..(1i64 << 16)).collect(), "v"))],
    ));
    c
}

fn join_plan() -> Plan {
    Plan::scan("orders").join(Plan::scan("lineitem"), "o_id", "l_oid")
}

fn agg_plan() -> Plan {
    Plan::scan("lineitem").aggregate("l_oid", vec![AggSpec::new(AggFn::Sum, "l_qty", "total")])
}

#[test]
fn over_budget_tenant_fails_typed_while_cotenants_match_oracle() {
    const TINY: u64 = 16 << 10; // 16 KiB: a 512 KiB filter output can't fit
    const AMPLE: u64 = 1 << 22;
    let dev = Device::a100();
    let cat = sched_catalog(&dev);
    let base_in_use = dev.mem_report().current_bytes;
    let specs = vec![
        QuerySpec::new(join_plan()).with_budget(AMPLE),
        QuerySpec::new(Plan::scan("big").filter(Expr::col("v").gt(Expr::lit(-1))))
            .with_budget(TINY),
        QuerySpec::new(agg_plan()).with_budget(AMPLE),
    ];
    let reports = engine::run_queries(&dev, &cat, specs, Policy::RoundRobin);

    // The over-budget tenant dies with the typed error, naming itself and
    // its budget — and its private ledger never crossed the budget.
    match &reports[1].result {
        Err(EngineError::BudgetExceeded {
            query,
            budget_bytes,
            requested_bytes,
            ..
        }) => {
            assert_eq!(*query, 1);
            assert_eq!(*budget_bytes, TINY);
            assert!(*requested_bytes > TINY, "the offending allocation is named");
        }
        other => panic!("expected BudgetExceeded, got {:?}", other.as_ref().err()),
    }
    assert!(reports[1].peak_mem_bytes <= TINY);

    // Co-tenants are unaffected: byte-for-byte the single-query outcome
    // under the same budget.
    for (i, plan) in [(0usize, join_plan()), (2usize, agg_plan())] {
        let solo_dev = Device::a100();
        let solo_cat = sched_catalog(&solo_dev);
        let solo = engine::run_queries(
            &solo_dev,
            &solo_cat,
            vec![QuerySpec::new(plan).with_budget(AMPLE)],
            Policy::Serial,
        );
        let (a, b) = (&reports[i], &solo[0]);
        let (x, y) = (
            a.result.as_ref().expect("co-tenant succeeds"),
            b.result.as_ref().expect("solo oracle succeeds"),
        );
        assert_eq!(x.table.rows_sorted(), y.table.rows_sorted(), "q{i} rows");
        assert_eq!(a.peak_mem_bytes, b.peak_mem_bytes, "q{i} ledger peak");
        assert_eq!(
            a.busy.secs().to_bits(),
            b.busy.secs().to_bits(),
            "q{i} simulated busy time"
        );
    }

    // Query allocations live on private sub-ledgers: the base ledger holds
    // exactly the catalog, before and after the failed session.
    assert_eq!(dev.mem_report().current_bytes, base_in_use);
}

#[test]
fn unsatisfiable_budget_is_rejected_at_admission() {
    let dev = Device::a100();
    let cat = sched_catalog(&dev);
    let absurd = dev.mem_capacity() * 2;
    let specs = vec![
        QuerySpec::new(join_plan()),
        QuerySpec::new(join_plan()).with_budget(absurd),
    ];
    let reports = engine::run_queries(&dev, &cat, specs, Policy::RoundRobin);
    assert!(reports[0].result.is_ok(), "co-tenant runs to completion");
    match &reports[1].result {
        Err(EngineError::BudgetUnsatisfiable {
            requested_bytes,
            available_bytes,
        }) => {
            assert_eq!(*requested_bytes, absurd);
            assert!(*available_bytes < absurd);
        }
        other => panic!(
            "expected BudgetUnsatisfiable, got {:?}",
            other.as_ref().err()
        ),
    }
}

#[test]
fn budget_capped_tenant_spills_out_of_core_and_stays_correct() {
    // A budget big enough to run chunk-by-chunk but far too small for the
    // direct join: the planner must spill out-of-core rather than fail —
    // and produce exactly the rows an uncapped device produces.
    let n = 1usize << 15;
    let build = |dev: &Device| {
        let mut c = Catalog::new();
        c.insert(Table::new(
            "r",
            vec![
                ("rk", Column::from_i32(dev, (0..n as i32).collect(), "rk")),
                (
                    "rv",
                    Column::from_i64(dev, (0..n as i64).map(|i| i * 3).collect(), "rv"),
                ),
            ],
        ));
        c.insert(Table::new(
            "s",
            vec![
                (
                    "sk",
                    Column::from_i32(
                        dev,
                        (0..n as i32).map(|i| (i * 5) % n as i32).collect(),
                        "sk",
                    ),
                ),
                (
                    "sv",
                    Column::from_i64(dev, (0..n as i64).map(|i| i + 1).collect(), "sv"),
                ),
            ],
        ));
        c
    };
    let plan = Plan::scan("r").join(Plan::scan("s"), "rk", "sk");

    let uncapped_dev = Device::a100();
    let oracle = engine::execute(&uncapped_dev, &build(&uncapped_dev), &plan)
        .expect("uncapped join succeeds");

    let budget = 1536u64 << 10; // 1.5 MiB — the direct join needs well over 2 MiB
    let dev = Device::a100();
    let cat = build(&dev);
    let reports = engine::run_queries(
        &dev,
        &cat,
        vec![QuerySpec::new(plan).with_budget(budget)],
        Policy::RoundRobin,
    );
    let out = reports[0]
        .result
        .as_ref()
        .expect("budgeted join spills, not fails");
    assert_eq!(out.table.rows_sorted(), oracle.table.rows_sorted());
    assert!(
        reports[0].peak_mem_bytes <= budget,
        "peak {} must respect the {budget} byte budget",
        reports[0].peak_mem_bytes
    );

    // Prove it actually went out-of-core: the join node's label records the
    // chunked re-plan.
    fn labels(n: &NodeStats, out: &mut Vec<String>) {
        out.push(n.label.clone());
        for c in &n.children {
            labels(c, out);
        }
    }
    let mut all = Vec::new();
    labels(&out.stats, &mut all);
    assert!(
        all.iter().any(|l| l.contains("chunked x")),
        "expected a chunked join node, got labels: {all:?}"
    );
}

// ---------------------------------------------------------------------------
// Admission-control failure edges: the serving path distinguishes two typed
// rejections — shed at a full queue vs rejected by the predicted-memory gate
// — and neither perturbs a co-tenant by a single byte.
// ---------------------------------------------------------------------------

/// A plan the predicted-memory gate must refuse under a tiny budget: its
/// materialized filter output alone is ~512 KiB.
fn doomed_plan() -> Plan {
    Plan::scan("big").filter(Expr::col("v").gt(Expr::lit(-1)))
}

#[test]
fn shed_and_reject_are_distinct_typed_errors_in_one_session() {
    const TINY: u64 = 16 << 10;
    let dev = Device::a100();
    let cat = sched_catalog(&dev);
    let free = dev.mem_capacity() - dev.mem_report().current_bytes;
    let budget = free * 2 / 5; // two reservations fit, a third cannot
    let t0 = dev.elapsed().secs();
    let at = SimTime::from_secs(t0);

    // Zero queue depth plus the memory gate: q0/q1 admit on arrival, q2
    // finds both reservations taken and nowhere to wait, q3 is refused by
    // the gate before it ever registers.
    let serving = ServingConfig::new().with_total_depth(0).with_memory_gate();
    let arrivals = vec![
        OpenQuery::new(at, "ok", QuerySpec::new(join_plan()).with_budget(budget)),
        OpenQuery::new(at, "ok", QuerySpec::new(agg_plan()).with_budget(budget)),
        OpenQuery::new(at, "ok", QuerySpec::new(join_plan()).with_budget(budget)),
        OpenQuery::new(
            at,
            "doomed",
            QuerySpec::new(doomed_plan()).with_budget(TINY),
        ),
    ];
    let reports = engine::run_open_loop_with(&dev, &cat, arrivals, Policy::Serial, &serving);

    assert!(
        reports[0].result.is_ok(),
        "{:?}",
        reports[0].result.as_ref().err()
    );
    assert!(
        reports[1].result.is_ok(),
        "{:?}",
        reports[1].result.as_ref().err()
    );

    // Shed at the full queue: the error names the query, and the query
    // observably never ran — no kernel time, completion at arrival.
    match &reports[2].result {
        Err(EngineError::QueueShed { query }) => assert_eq!(*query, 2),
        other => panic!("expected QueueShed, got {:?}", other.as_ref().err()),
    }
    assert_eq!(reports[2].busy.secs().to_bits(), 0f64.to_bits());
    assert_eq!(
        reports[2].completion.secs().to_bits(),
        reports[2].arrival.secs().to_bits()
    );

    // Rejected by the gate: a different variant, carrying the prediction
    // that doomed it — and the query never even registered.
    match &reports[3].result {
        Err(EngineError::AdmissionRejected {
            predicted_peak_bytes,
            budget_bytes,
        }) => {
            assert_eq!(*budget_bytes, TINY);
            assert!(
                *predicted_peak_bytes > TINY,
                "the rejection must carry the oversized prediction ({predicted_peak_bytes})"
            );
        }
        other => panic!("expected AdmissionRejected, got {:?}", other.as_ref().err()),
    }
    assert_eq!(reports[3].busy.secs().to_bits(), 0f64.to_bits());
    assert_eq!(
        reports[3].peak_mem_bytes, 0,
        "rejected queries never allocate"
    );
}

#[test]
fn cotenant_observables_are_unchanged_by_a_shed_coarrival() {
    // The same two-tenant session, with and without a third arrival that
    // gets shed: every co-tenant observable — rows, ledger peak, kernel
    // time, completion stamp — must be byte-identical.
    let serving = ServingConfig::new().with_total_depth(0);
    let run = |with_shed: bool| {
        let dev = Device::a100();
        let cat = sched_catalog(&dev);
        let free = dev.mem_capacity() - dev.mem_report().current_bytes;
        let budget = free * 2 / 5;
        let at = SimTime::from_secs(dev.elapsed().secs());
        let mut arrivals = vec![
            OpenQuery::new(at, "ok", QuerySpec::new(join_plan()).with_budget(budget)),
            OpenQuery::new(at, "ok", QuerySpec::new(agg_plan()).with_budget(budget)),
        ];
        if with_shed {
            arrivals.push(OpenQuery::new(
                at,
                "extra",
                QuerySpec::new(join_plan()).with_budget(budget),
            ));
        }
        engine::run_open_loop_with(&dev, &cat, arrivals, Policy::RoundRobin, &serving)
    };

    let baseline = run(false);
    let with_shed = run(true);
    assert!(matches!(
        with_shed[2].result,
        Err(EngineError::QueueShed { query: 2 })
    ));
    for i in 0..2 {
        let (a, b) = (&baseline[i], &with_shed[i]);
        let (x, y) = (
            a.result.as_ref().expect("baseline co-tenant succeeds"),
            b.result
                .as_ref()
                .expect("co-tenant succeeds despite the shed"),
        );
        assert_eq!(x.table.rows_sorted(), y.table.rows_sorted(), "q{i} rows");
        assert_eq!(a.peak_mem_bytes, b.peak_mem_bytes, "q{i} ledger peak");
        assert_eq!(
            a.busy.secs().to_bits(),
            b.busy.secs().to_bits(),
            "q{i} busy"
        );
        assert_eq!(
            a.completion.secs().to_bits(),
            b.completion.secs().to_bits(),
            "q{i} completion stamp"
        );
    }
}

#[test]
fn zero_capacity_queue_degrades_to_pure_admission_control() {
    // With `total_depth = 0` there is no waiting room at all: an arrival
    // either admits on the spot or is shed on the spot. Whether it admits
    // is purely a memory question.
    let run = |budget_num: u64, budget_den: u64| {
        let dev = Device::a100();
        let cat = sched_catalog(&dev);
        let free = dev.mem_capacity() - dev.mem_report().current_bytes;
        let budget = free * budget_num / budget_den;
        let at = SimTime::from_secs(dev.elapsed().secs());
        let arrivals = (0..3)
            .map(|_| OpenQuery::new(at, "c", QuerySpec::new(agg_plan()).with_budget(budget)))
            .collect();
        engine::run_open_loop_with(
            &dev,
            &cat,
            arrivals,
            Policy::Serial,
            &ServingConfig::new().with_total_depth(0),
        )
    };

    // All three reservations fit: nothing ever needs to wait, so the
    // zero-capacity queue sheds nothing and everyone admits at arrival.
    let fits = run(1, 4);
    for r in &fits {
        assert!(
            r.result.is_ok(),
            "q{}: {:?}",
            r.query,
            r.result.as_ref().err()
        );
        assert_eq!(
            r.admitted.secs().to_bits(),
            r.arrival.secs().to_bits(),
            "q{}: with capacity free nothing queues",
            r.query
        );
    }

    // Only two fit: the third would have to wait, and with no waiting room
    // that means an immediate shed — pure admission control.
    let pressured = run(2, 5);
    assert!(pressured[0].result.is_ok());
    assert!(pressured[1].result.is_ok());
    assert!(matches!(
        pressured[2].result,
        Err(EngineError::QueueShed { query: 2 })
    ));
    assert_eq!(
        pressured[2].completion.secs().to_bits(),
        pressured[2].arrival.secs().to_bits(),
        "a zero-capacity shed is decided at the arrival instant"
    );
}
