//! Semi/anti/outer join semantics across every implementation, checked
//! against the oracle.

use gpu_join::prelude::*;
use gpu_join::workloads::JoinWorkload;
use joins::oracle::join_oracle_kind;
use joins::JoinKind;

const ALGS: [Algorithm; 7] = [
    Algorithm::SmjUm,
    Algorithm::SmjOm,
    Algorithm::PhjUm,
    Algorithm::PhjOm,
    Algorithm::PhjOmGfur,
    Algorithm::Nphj,
    Algorithm::CpuRadix,
];

fn check_kind(kind: JoinKind, match_ratio: f64) {
    let exec = Executor::a100();
    let w = JoinWorkload {
        match_ratio,
        ..JoinWorkload::wide(1 << 11)
    };
    let (r, s) = w.generate(exec.device());
    let expected = join_oracle_kind(&r, &s, kind);
    let config = JoinConfig {
        kind,
        ..JoinConfig::default()
    };
    for alg in ALGS {
        let out = exec.join(alg, &r, &s, &config);
        assert_eq!(out.rows_sorted(), expected, "{alg} {}", kind.name());
        if matches!(kind, JoinKind::Semi | JoinKind::Anti) {
            assert!(
                out.r_payloads.is_empty(),
                "{alg}: semi/anti drop R payloads"
            );
        }
    }
}

#[test]
fn semi_join_all_algorithms() {
    check_kind(JoinKind::Semi, 0.6);
}

#[test]
fn anti_join_all_algorithms() {
    check_kind(JoinKind::Anti, 0.6);
}

#[test]
fn outer_join_all_algorithms() {
    check_kind(JoinKind::Outer, 0.6);
}

#[test]
fn full_match_degenerate_cases() {
    // 100% match: anti is empty, semi = distinct probe rows, outer = inner.
    let exec = Executor::a100();
    let (r, s) = JoinWorkload::wide(1 << 10).generate(exec.device());
    let anti = exec.join(
        Algorithm::PhjOm,
        &r,
        &s,
        &JoinConfig {
            kind: JoinKind::Anti,
            ..JoinConfig::default()
        },
    );
    assert!(anti.is_empty());
    let semi = exec.join(
        Algorithm::PhjOm,
        &r,
        &s,
        &JoinConfig {
            kind: JoinKind::Semi,
            ..JoinConfig::default()
        },
    );
    assert_eq!(semi.len(), s.len(), "PK-FK: every probe row matches once");
    let outer = exec.join(
        Algorithm::PhjOm,
        &r,
        &s,
        &JoinConfig {
            kind: JoinKind::Outer,
            ..JoinConfig::default()
        },
    );
    let inner = exec.join(Algorithm::PhjOm, &r, &s, &JoinConfig::default());
    assert_eq!(outer.rows_sorted(), inner.rows_sorted());
}

#[test]
fn duplicates_on_build_side_dedup_in_semi() {
    let exec = Executor::a100();
    let dev = exec.device();
    let r = Relation::new(
        "R",
        Column::from_i32(dev, vec![7, 7, 7, 9], "k"),
        vec![
            Column::from_i32(dev, vec![1, 2, 3, 4], "p"),
            Column::from_i32(dev, vec![5, 6, 7, 8], "q"),
        ],
    );
    let s = Relation::new(
        "S",
        Column::from_i32(dev, vec![7, 8], "k"),
        vec![
            Column::from_i64(dev, vec![70, 80], "x"),
            Column::from_i64(dev, vec![71, 81], "y"),
        ],
    );
    let config = JoinConfig {
        unique_build: false,
        kind: JoinKind::Semi,
        ..JoinConfig::default()
    };
    for alg in ALGS {
        let out = joins::run_join(dev, alg, &r, &s, &config);
        assert_eq!(
            out.rows_sorted(),
            vec![vec![7, 70, 71]],
            "{alg}: one semi row despite 3 build matches"
        );
    }
}

#[test]
fn outer_join_nulls_are_type_sentinels() {
    let exec = Executor::a100();
    let dev = exec.device();
    let r = Relation::new(
        "R",
        Column::from_i32(dev, vec![1], "k"),
        vec![
            Column::from_i32(dev, vec![10], "p32"),
            Column::from_i64(dev, vec![100], "p64"),
        ],
    );
    let s = Relation::new(
        "S",
        Column::from_i32(dev, vec![1, 2], "k"),
        vec![Column::from_i32(dev, vec![11, 22], "q")],
    );
    let config = JoinConfig {
        kind: JoinKind::Outer,
        ..JoinConfig::default()
    };
    let out = exec.join(Algorithm::SmjOm, &r, &s, &config);
    assert_eq!(
        out.rows_sorted(),
        vec![vec![1, 10, 100, 11], vec![2, i32::MIN as i64, i64::MIN, 22],]
    );
}
