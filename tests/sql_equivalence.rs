//! The SQL frontend's two contracts, end to end:
//!
//! 1. **Round-trip identity** — for any query the grammar can express,
//!    `parse(pretty(q))` reproduces the same AST (proptest over random
//!    query shapes). The printer is fully parenthesized, so this exercises
//!    the parser's precedence against the printer's explicit structure.
//! 2. **Oracle equivalence** — TPC-H Q3 and Q18 arriving as SQL text
//!    produce *byte-identical* outputs (names, values, row order) to the
//!    same plans assembled by hand against the engine API, the packed
//!    composite keys written out long-hand from the catalog statistics.
//!    The equivalence must hold fused and unfused, across
//!    `host_threads` 1 vs 4, and under every scheduler policy.

use columnar::date::parse_date;
use engine::demo::{q18_sql, q3_sql, tpch_full};
use engine::scheduler::{run_queries, Policy, QuerySpec};
use engine::{execute, execute_unfused, AggSpec, Catalog, Expr, Plan, SqlSpan, Table};
use groupby::AggFn;
use heuristics::composite::bits_for_span;
use proptest::prelude::*;
use sim::{Device, DeviceConfig};
use sql::ast::{AggKind, AstExpr, BinOp, JoinClause, OrderItem, Query, SelectItem};

fn sp() -> SqlSpan {
    SqlSpan::new(0, 0, "")
}

// ---------------------------------------------------------------------
// 1. pretty -> reparse identity
// ---------------------------------------------------------------------
//
// The vendored proptest is combinator-light (ranges, tuples, vec, map),
// so the query strategy draws a pool of entropy words and a deterministic
// builder spends them constructing a random AST.

/// A spendable entropy stream; wraps around, so any word budget yields a
/// complete (if repetitive) query.
struct Seed {
    words: Vec<u64>,
    at: usize,
}

impl Seed {
    fn next(&mut self) -> u64 {
        let w = self.words[self.at % self.words.len()];
        self.at += 1;
        w
    }

    fn pick(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }

    fn flag(&mut self) -> bool {
        self.next() & 1 == 1
    }
}

const IDENTS: [&str; 8] = ["a", "b", "col1", "o_key", "price", "qty", "t1", "seg"];
const STRINGS: [&str; 4] = ["RED", "BUILDING", "X", "AB12"];

fn gen_column(seed: &mut Seed) -> AstExpr {
    AstExpr::Column {
        table: seed
            .flag()
            .then(|| IDENTS[seed.pick(IDENTS.len())].to_string()),
        name: IDENTS[seed.pick(IDENTS.len())].to_string(),
        span: sp(),
    }
}

/// A random expression; `cmp` gates comparison/boolean operators (GROUP BY
/// and ORDER BY only parse additive expressions).
fn gen_expr(seed: &mut Seed, depth: u32, cmp: bool) -> AstExpr {
    if depth == 0 || seed.pick(3) == 0 {
        return match seed.pick(4) {
            0 => gen_column(seed),
            1 => AstExpr::Int(seed.next() as i32 as i64),
            2 => AstExpr::Str(STRINGS[seed.pick(STRINGS.len())].to_string(), sp()),
            _ => AstExpr::Date(
                format!(
                    "19{:02}-{:02}-{:02}",
                    seed.pick(100),
                    1 + seed.pick(12),
                    1 + seed.pick(28)
                ),
                sp(),
            ),
        };
    }
    if seed.pick(4) == 0 {
        // Aggregate call; COUNT may go argless (`COUNT(*)`).
        let kind = [
            AggKind::Count,
            AggKind::Sum,
            AggKind::Min,
            AggKind::Max,
            AggKind::Avg,
        ][seed.pick(5)];
        let arg = if kind == AggKind::Count && seed.flag() {
            None
        } else {
            Some(Box::new(gen_expr(seed, depth - 1, false)))
        };
        return AstExpr::Agg {
            kind,
            arg,
            span: sp(),
        };
    }
    let arith = [BinOp::Add, BinOp::Sub, BinOp::Mul, BinOp::Div, BinOp::Mod];
    let full = [
        BinOp::Add,
        BinOp::Sub,
        BinOp::Mul,
        BinOp::Lt,
        BinOp::Le,
        BinOp::Eq,
        BinOp::Ne,
        BinOp::Ge,
        BinOp::Gt,
        BinOp::And,
        BinOp::Or,
    ];
    let op = if cmp {
        full[seed.pick(full.len())]
    } else {
        arith[seed.pick(arith.len())]
    };
    AstExpr::Binary {
        op,
        lhs: Box::new(gen_expr(seed, depth - 1, cmp)),
        rhs: Box::new(gen_expr(seed, depth - 1, cmp)),
        span: sp(),
    }
}

fn gen_query(words: Vec<u64>) -> Query {
    let mut s = Seed { words, at: 0 };
    let select = (0..1 + s.pick(3))
        .map(|_| SelectItem {
            expr: gen_expr(&mut s, 2, false),
            alias: s.flag().then(|| IDENTS[s.pick(IDENTS.len())].to_string()),
        })
        .collect();
    let from = (0..1 + s.pick(2))
        .map(|_| (IDENTS[s.pick(IDENTS.len())].to_string(), sp()))
        .collect();
    let joins = (0..s.pick(2))
        .map(|_| JoinClause {
            table: IDENTS[s.pick(IDENTS.len())].to_string(),
            on_left: gen_column(&mut s),
            on_right: gen_column(&mut s),
            span: sp(),
        })
        .collect();
    let where_ = s.flag().then(|| gen_expr(&mut s, 2, true));
    let group_by = (0..s.pick(3)).map(|_| gen_expr(&mut s, 1, false)).collect();
    let having = s.flag().then(|| gen_expr(&mut s, 2, true));
    let order_by = (0..s.pick(3))
        .map(|_| OrderItem {
            expr: gen_expr(&mut s, 1, false),
            desc: s.flag(),
        })
        .collect();
    let limit = s.flag().then(|| s.pick(1000));
    Query {
        distinct: s.flag(),
        select,
        from,
        joins,
        where_,
        group_by,
        having,
        order_by,
        limit,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn pretty_then_reparse_is_identity(
        words in proptest::collection::vec(any::<u64>(), 24..96)
    ) {
        let q = gen_query(words);
        let text = q.pretty();
        let q2 = sql::parse(&text)
            .unwrap_or_else(|e| panic!("pretty output must reparse: {e}\n{text}"));
        prop_assert!(q.same(&q2), "roundtrip changed the tree:\n{}", text);
        // And printing again is a fixed point.
        prop_assert_eq!(text, q2.pretty());
    }
}

// ---------------------------------------------------------------------
// 2. SQL vs hand-assembled oracle plans
// ---------------------------------------------------------------------

const LINEITEMS: usize = 2048;

fn catalog(dev: &Device) -> Catalog {
    tpch_full(dev, LINEITEMS, 7)
}

/// Column stats from the catalog, the way a careful engineer would read
/// them off `EXPLAIN` before hand-packing a composite key.
fn stats(cat: &Catalog, table: &str, col: &str) -> (i64, i64) {
    let m = cat.schema(table).unwrap().column(col).unwrap();
    (m.min, m.max)
}

/// Hand-build the order-preserving packed key for `(col, min, max, desc)`
/// fields, major first — the documented composite-key scheme.
fn packed(fields: &[(&str, i64, i64, bool)]) -> Expr {
    let mut acc: Option<Expr> = None;
    for &(col, min, max, desc) in fields {
        let width = bits_for_span((max - min) as u64);
        let field = if desc {
            Expr::lit(max).sub(Expr::col(col))
        } else if min == 0 {
            Expr::col(col)
        } else {
            Expr::col(col).sub(Expr::lit(min))
        };
        acc = Some(match acc {
            None => field,
            Some(a) => a.mul(Expr::lit(1i64 << width)).add(field),
        });
    }
    acc.expect("at least one field")
}

/// Unpack field `i` of the same layout.
fn unpacked(fields: &[(&str, i64, i64, bool)], i: usize) -> Expr {
    let widths: Vec<u32> = fields
        .iter()
        .map(|&(_, min, max, _)| bits_for_span((max - min) as u64))
        .collect();
    let shift: u32 = widths[i + 1..].iter().sum();
    let mut e = Expr::col("__gkey");
    if shift > 0 {
        e = e.div(Expr::lit(1i64 << shift));
    }
    if i > 0 {
        e = e.rem(Expr::lit(1i64 << widths[i]));
    }
    if fields[i].1 != 0 {
        e = e.add(Expr::lit(fields[i].1));
    }
    e
}

/// Q3 assembled by hand against the engine API: filters pushed to the
/// scans, left-deep joins in FROM order, the three-column GROUP BY packed
/// into `__gkey`, the two-key ORDER BY packed into `__skey` with the
/// descending revenue encoded as `max - value`, and the LIMIT folded into
/// the sort.
fn q3_hand(cat: &Catalog) -> Plan {
    let cutoff = parse_date("1995-03-15").unwrap();
    let building = 1; // MKT_SEGMENTS[1]
    let (ok_min, ok_max) = stats(cat, "orders", "o_orderkey");
    let (od_min, od_max) = stats(cat, "orders", "o_orderdate");
    let (sp_min, sp_max) = stats(cat, "orders", "o_shippriority");
    let gkey = [
        ("o_orderkey", ok_min, ok_max, false),
        ("o_orderdate", od_min, od_max, false),
        ("o_shippriority", sp_min, sp_max, false),
    ];
    let joined = Plan::scan("customer")
        .filter(Expr::col("c_mktsegment").eq(Expr::lit(building)))
        .join(
            Plan::scan("orders").filter(Expr::col("o_orderdate").lt(Expr::lit(cutoff))),
            "c_custkey",
            "o_custkey",
        )
        .join(
            Plan::scan("lineitem").filter(Expr::col("l_shipdate").gt(Expr::lit(cutoff))),
            "o_orderkey",
            "l_orderkey",
        );
    // Pre-aggregation projection: group keys + the computed SUM argument.
    let pre = joined.project(vec![
        ("o_orderkey", Expr::col("o_orderkey")),
        ("o_orderdate", Expr::col("o_orderdate")),
        ("o_shippriority", Expr::col("o_shippriority")),
        (
            "__agg0",
            Expr::col("l_extendedprice").mul(Expr::lit(100).sub(Expr::col("l_discount"))),
        ),
    ]);
    let grouped = pre
        .project(vec![
            ("__gkey", packed(&gkey)),
            ("__agg0", Expr::col("__agg0")),
        ])
        .aggregate(
            "__gkey",
            vec![AggSpec::new(AggFn::Sum, "__agg0", "revenue")],
        )
        .project(vec![
            ("o_orderkey", unpacked(&gkey, 0)),
            ("o_orderdate", unpacked(&gkey, 1)),
            ("o_shippriority", unpacked(&gkey, 2)),
            ("revenue", Expr::col("revenue")),
        ]);
    // SELECT order, then the packed two-key sort with folded LIMIT.
    let selected = grouped.project(vec![
        ("o_orderkey", Expr::col("o_orderkey")),
        ("revenue", Expr::col("revenue")),
        ("o_orderdate", Expr::col("o_orderdate")),
        ("o_shippriority", Expr::col("o_shippriority")),
    ]);
    // Revenue's planner range: SUM is bounded by rows × per-element range;
    // the hand-built sort key uses the same bounds the planner derives.
    let (_, ep_max) = stats(cat, "lineitem", "l_extendedprice");
    let (d_min, _) = stats(cat, "lineitem", "l_discount");
    let rows = cat.schema("lineitem").unwrap().rows as i64;
    let rev_max = rows * ep_max * (100 - d_min);
    let skey = [
        ("revenue", 0, rev_max, true),
        ("o_orderdate", od_min, od_max, false),
    ];
    selected
        .project(vec![
            ("o_orderkey", Expr::col("o_orderkey")),
            ("revenue", Expr::col("revenue")),
            ("o_orderdate", Expr::col("o_orderdate")),
            ("o_shippriority", Expr::col("o_shippriority")),
            ("__skey", packed(&skey)),
        ])
        .sort_by("__skey", false, Some(10))
        .project(vec![
            ("o_orderkey", Expr::col("o_orderkey")),
            ("revenue", Expr::col("revenue")),
            ("o_orderdate", Expr::col("o_orderdate")),
            ("o_shippriority", Expr::col("o_shippriority")),
        ])
}

/// Q18 by hand: at this scale the five-column GROUP BY still packs.
fn q18_hand(cat: &Catalog) -> Plan {
    let (cn_min, cn_max) = stats(cat, "customer", "c_name");
    let (ck_min, ck_max) = stats(cat, "customer", "c_custkey");
    let (ok_min, ok_max) = stats(cat, "orders", "o_orderkey");
    let (od_min, od_max) = stats(cat, "orders", "o_orderdate");
    let (tp_min, tp_max) = stats(cat, "orders", "o_totalprice");
    let gkey = [
        ("c_name", cn_min, cn_max, false),
        ("c_custkey", ck_min, ck_max, false),
        ("o_orderkey", ok_min, ok_max, false),
        ("o_orderdate", od_min, od_max, false),
        ("o_totalprice", tp_min, tp_max, false),
    ];
    let joined = Plan::scan("customer")
        .join(Plan::scan("orders"), "c_custkey", "o_custkey")
        .join(Plan::scan("lineitem"), "o_orderkey", "l_orderkey");
    let pre = joined.project(vec![
        ("c_name", Expr::col("c_name")),
        ("c_custkey", Expr::col("c_custkey")),
        ("o_orderkey", Expr::col("o_orderkey")),
        ("o_orderdate", Expr::col("o_orderdate")),
        ("o_totalprice", Expr::col("o_totalprice")),
        ("l_quantity", Expr::col("l_quantity")),
    ]);
    let grouped = pre
        .project(vec![
            ("__gkey", packed(&gkey)),
            ("l_quantity", Expr::col("l_quantity")),
        ])
        .aggregate(
            "__gkey",
            vec![AggSpec::new(AggFn::Sum, "l_quantity", "total_qty")],
        )
        .project(vec![
            ("c_name", unpacked(&gkey, 0)),
            ("c_custkey", unpacked(&gkey, 1)),
            ("o_orderkey", unpacked(&gkey, 2)),
            ("o_orderdate", unpacked(&gkey, 3)),
            ("o_totalprice", unpacked(&gkey, 4)),
            ("total_qty", Expr::col("total_qty")),
        ]);
    let having = grouped.filter(Expr::col("total_qty").gt(Expr::lit(150)));
    let selected = having.project(vec![
        ("c_name", Expr::col("c_name")),
        ("c_custkey", Expr::col("c_custkey")),
        ("o_orderkey", Expr::col("o_orderkey")),
        ("o_orderdate", Expr::col("o_orderdate")),
        ("o_totalprice", Expr::col("o_totalprice")),
        ("total_qty", Expr::col("total_qty")),
    ]);
    let skey = [
        ("o_totalprice", tp_min, tp_max, true),
        ("o_orderdate", od_min, od_max, false),
    ];
    let all = |with_skey: bool| {
        let mut v = vec![
            ("c_name", Expr::col("c_name")),
            ("c_custkey", Expr::col("c_custkey")),
            ("o_orderkey", Expr::col("o_orderkey")),
            ("o_orderdate", Expr::col("o_orderdate")),
            ("o_totalprice", Expr::col("o_totalprice")),
            ("total_qty", Expr::col("total_qty")),
        ];
        if with_skey {
            v.push(("__skey", packed(&skey)));
        }
        v
    };
    selected
        .project(all(true))
        .sort_by("__skey", false, Some(100))
        .project(all(false))
}

fn bytes_of(t: &Table) -> Vec<(String, Vec<i64>)> {
    t.columns()
        .iter()
        .map(|(n, c)| (n.clone(), c.to_vec_i64()))
        .collect()
}

fn assert_same_output(sql_text: &str, hand: &Plan, what: &str) {
    let dev = Device::a100();
    let cat = catalog(&dev);
    let lowered = sql::plan_sql(sql_text, &cat).expect("frontend plans the query");
    let via_sql = execute(&dev, &cat, &lowered.plan).unwrap();
    let via_hand = execute(&dev, &cat, hand).unwrap();
    assert_eq!(
        bytes_of(&via_sql.table),
        bytes_of(&via_hand.table),
        "{what}: SQL and hand-built disagree"
    );
    assert!(
        via_sql.table.num_rows() > 0,
        "{what}: empty result proves nothing"
    );
    // The frontend must not disturb fused/unfused equivalence either.
    let unfused = execute_unfused(&dev, &cat, &lowered.plan).unwrap();
    assert_eq!(
        bytes_of(&via_sql.table),
        bytes_of(&unfused.table),
        "{what}: fused vs unfused"
    );
}

#[test]
fn q3_from_sql_matches_hand_built_plan() {
    let dev = Device::a100();
    let cat = catalog(&dev);
    let hand = q3_hand(&cat);
    assert_same_output(q3_sql(), &hand, "Q3");
}

#[test]
fn q18_from_sql_matches_hand_built_plan() {
    let dev = Device::a100();
    let cat = catalog(&dev);
    let hand = q18_hand(&cat);
    assert_same_output(q18_sql(), &hand, "Q18");
}

#[test]
fn sql_queries_are_bitwise_stable_across_host_threads() {
    let mut outs = Vec::new();
    for threads in [1usize, 4] {
        let dev = Device::new(DeviceConfig::a100().with_host_threads(threads));
        let cat = catalog(&dev);
        let mut per_thread = Vec::new();
        for text in [q3_sql(), q18_sql()] {
            let lowered = sql::plan_sql(text, &cat).expect("plans");
            let out = execute(&dev, &cat, &lowered.plan).unwrap();
            per_thread.push(bytes_of(&out.table));
        }
        outs.push(per_thread);
    }
    assert_eq!(outs[0], outs[1], "host_threads must not change any byte");
}

#[test]
fn sql_queries_are_identical_under_every_scheduler_policy() {
    let dev = Device::a100();
    let cat = catalog(&dev);
    let plans: Vec<Plan> = [q3_sql(), q18_sql()]
        .iter()
        .map(|t| sql::plan_sql(t, &cat).expect("plans").plan)
        .collect();
    let mut per_policy = Vec::new();
    for policy in [Policy::Serial, Policy::RoundRobin, Policy::WeightedFair] {
        let specs: Vec<QuerySpec> = plans.iter().cloned().map(QuerySpec::new).collect();
        let reports = run_queries(&dev, &cat, specs, policy);
        let outs: Vec<_> = reports
            .iter()
            .map(|r| bytes_of(&r.result.as_ref().expect("queries succeed").table))
            .collect();
        per_policy.push(outs);
    }
    assert_eq!(per_policy[0], per_policy[1], "Serial vs RoundRobin");
    assert_eq!(per_policy[0], per_policy[2], "Serial vs WeightedFair");
}
