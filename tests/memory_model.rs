//! Validate the Section 4.4 analysis against *measured* simulator peaks:
//! the optimized (GFTR) implementations never consume more device memory
//! than their GFUR counterparts — the claim of Table 5.

use gpu_join::prelude::*;
use gpu_join::workloads::JoinWorkload;

fn measure(alg: Algorithm, w: &JoinWorkload) -> u64 {
    let exec = Executor::a100();
    let (r, s) = w.generate(exec.device());
    exec.join(alg, &r, &s, &JoinConfig::default())
        .stats
        .peak_mem_bytes
}

#[test]
fn smj_om_peaks_at_or_below_smj_um() {
    let w = JoinWorkload {
        r_payloads: vec![DType::I32; 2],
        s_payloads: vec![DType::I32; 2],
        ..JoinWorkload::narrow(1 << 16)
    };
    let um = measure(Algorithm::SmjUm, &w);
    let om = measure(Algorithm::SmjOm, &w);
    assert!(om <= um, "SMJ-OM {om} should be <= SMJ-UM {um} (Table 5)");
}

#[test]
fn phj_om_peaks_below_phj_um() {
    let w = JoinWorkload {
        r_payloads: vec![DType::I32; 2],
        s_payloads: vec![DType::I32; 2],
        ..JoinWorkload::narrow(1 << 16)
    };
    let um = measure(Algorithm::PhjUm, &w);
    let om = measure(Algorithm::PhjOm, &w);
    // Bucket chaining over-allocates its pool (fragmentation), so the gap
    // is strict.
    assert!(om < um, "PHJ-OM {om} should be < PHJ-UM {um} (Table 5)");
}

#[test]
fn eight_byte_payloads_scale_memory_like_table5() {
    // Table 5: moving from 4B to 8B payloads grows every implementation's
    // footprint; the OM <= UM ordering is preserved.
    let mk = |dtype: DType| JoinWorkload {
        r_payloads: vec![dtype; 2],
        s_payloads: vec![dtype; 2],
        ..JoinWorkload::narrow(1 << 15)
    };
    for alg in [
        Algorithm::SmjUm,
        Algorithm::SmjOm,
        Algorithm::PhjUm,
        Algorithm::PhjOm,
    ] {
        let small = measure(alg, &mk(DType::I32));
        let big = measure(alg, &mk(DType::I64));
        assert!(
            big > small,
            "{alg}: 8B payloads must cost more ({big} vs {small})"
        );
    }
    let um = measure(Algorithm::PhjUm, &mk(DType::I64));
    let om = measure(Algorithm::PhjOm, &mk(DType::I64));
    assert!(om < um, "PHJ-OM {om} vs PHJ-UM {um} at 8B payloads");
}

#[test]
fn analytic_tables_print_and_serialize() {
    // The bench harness serializes the analytic tables; make sure the rows
    // carry the paper's structure (4 GFUR rows, 5 GFTR rows).
    let gfur = gpu_join::memory_model::gfur_table(16, 1 << 20);
    let gftr = gpu_join::memory_model::gftr_table(16, 1 << 20);
    assert_eq!(gfur.len(), 4);
    assert_eq!(gftr.len(), 5);
    let json = serde_json::to_string(&gfur).expect("rows serialize");
    assert!(json.contains("Initialize ID_R"));
}
