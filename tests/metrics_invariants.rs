//! Invariants of the `sim::metrics` subsystem, checked end to end through
//! the real execution stack:
//!
//! * metrics totals cross-check exactly against the hardware counters and
//!   against the kernel events of a simultaneously recorded trace;
//! * exports are byte-identical across host-thread counts and across
//!   re-runs (the serving curve's determinism claim);
//! * the policy-invariant metric families (`operator_*`, `tenant_*`)
//!   are byte-identical across scheduling policies — scheduling moves
//!   *when* work runs, never how much;
//! * a disabled recorder perturbs nothing simulated;
//! * open-loop arrivals respect the simulated clock (admission never
//!   precedes arrival, and an idle device jumps its clock forward to the
//!   next arrival instead of busy-waiting);
//! * the cumulative `*_total` sampler series are monotone.

use gpu_join::engine::scheduler::{OpenQuery, Policy, QuerySpec};
use gpu_join::engine::{self, AggSpec, Catalog, Expr, Plan, Table};
use gpu_join::prelude::*;
use gpu_join::sim::{metrics_json, openmetrics, secs_to_ticks, MetricsSnapshot};
use gpu_join::workloads::JoinWorkload;

/// A short sampler interval so even smoke-sized runs cross ticks (the
/// sampler emits at most one point per launch regardless).
const INTERVAL: f64 = 1e-9;

fn metered_device(threads: usize) -> Device {
    let dev = Device::new(
        DeviceConfig::a100()
            .scaled(8192.0)
            .with_host_threads(threads),
    );
    dev.enable_metrics(SimTime::from_secs(INTERVAL));
    dev
}

fn catalog(dev: &Device) -> Catalog {
    let mut c = Catalog::new();
    c.insert(Table::new(
        "orders",
        vec![("o_id", Column::from_i32(dev, (0..128).collect(), "o_id"))],
    ));
    c.insert(Table::new(
        "lineitem",
        vec![
            (
                "l_oid",
                Column::from_i32(dev, (0..640).map(|i| (i * 3) % 160).collect(), "l_oid"),
            ),
            (
                "l_qty",
                Column::from_i64(dev, (0..640).map(|i| (i * 13) % 37).collect(), "l_qty"),
            ),
        ],
    ));
    c
}

fn tenant_plans() -> Vec<Plan> {
    vec![
        Plan::scan("orders")
            .join(Plan::scan("lineitem"), "o_id", "l_oid")
            .aggregate("o_id", vec![AggSpec::new(AggFn::Sum, "l_qty", "total")]),
        Plan::scan("lineitem")
            .filter(Expr::col("l_qty").gt(Expr::lit(9)))
            .distinct("l_oid"),
        Plan::scan("orders").join(Plan::scan("lineitem"), "o_id", "l_oid"),
    ]
}

/// Exports of one snapshot, as the strings the `--metrics` flag writes.
fn exports(snap: &MetricsSnapshot) -> (String, String) {
    let snaps = std::slice::from_ref(snap);
    (openmetrics(snaps), metrics_json(snaps))
}

#[test]
fn totals_match_counters_and_trace_exactly() {
    let dev = metered_device(1);
    dev.enable_tracing();
    let (r, s) = JoinWorkload::wide(1 << 14).generate(&dev);
    let _ = gpu_join::joins::run_join(&dev, Algorithm::PhjUm, &r, &s, &JoinConfig::default());

    let c = dev.counters();
    let trace = dev.take_trace().expect("tracing was enabled");
    let t = dev
        .metrics_snapshot()
        .expect("metrics recorder is on")
        .totals;

    // Metrics were enabled from device creation with no resets in between,
    // so the cumulative totals equal the counters field for field.
    assert_eq!(t.launches, c.kernel_launches);
    assert_eq!(t.dram_read_bytes, c.dram_read_bytes);
    assert_eq!(t.dram_write_bytes, c.dram_write_bytes);
    assert_eq!(t.warp_instructions, c.warp_instructions);
    assert_eq!(t.load_requests, c.load_requests);
    assert_eq!(t.sectors_requested, c.sectors_requested);
    assert_eq!(t.l2_hits, c.l2_hits);
    assert_eq!(t.l2_misses, c.l2_misses);
    assert_eq!(t.atomics, c.atomics);

    // Busy time is recorded per launch as integer nanoseconds of the same
    // kernel durations the trace carries — the sums agree exactly, and
    // both agree with the counters' cycle total up to per-launch rounding.
    assert_eq!(trace.kernels().count() as u64, t.launches);
    let trace_ns: u64 = trace.kernels().map(|k| secs_to_ticks(k.dur)).sum();
    assert_eq!(t.busy_ns, trace_ns);
    let counter_secs = c.cycles / dev.config().clock_hz;
    assert!(
        (t.busy_ns as f64 * 1e-9 - counter_secs).abs() <= t.launches as f64 * 1e-9,
        "metrics busy {}ns vs counters {}s",
        t.busy_ns,
        counter_secs
    );
}

#[test]
fn exports_are_byte_identical_across_host_threads_and_reruns() {
    let run = |threads: usize| -> (String, String) {
        let dev = metered_device(threads);
        let cat = catalog(&dev);
        let t0 = dev.elapsed().secs();
        let arrivals = tenant_plans()
            .into_iter()
            .enumerate()
            .map(|(i, p)| {
                OpenQuery::new(
                    SimTime::from_secs(t0 + i as f64 * 2e-6),
                    format!("c{}", i % 2),
                    QuerySpec::new(p),
                )
            })
            .collect();
        let reports = engine::run_open_loop(&dev, &cat, arrivals, Policy::Serial);
        assert!(reports.iter().all(|r| r.result.is_ok()));
        exports(&dev.metrics_snapshot().expect("metrics recorder is on"))
    };
    let (a, b, c) = (run(1), run(8), run(1));
    assert_eq!(a, b, "exports differ across host_threads");
    assert_eq!(a, c, "exports differ across re-runs");
}

#[test]
fn operator_and_tenant_families_are_policy_invariant() {
    // Scheduling policy decides when each tenant runs, not what it runs:
    // the per-operator histograms and per-tenant work counters must come
    // out byte-identical under any policy. (Completion-time metrics — the
    // latency histograms — legitimately move; they are excluded.)
    let family_lines = |policy: Policy| -> Vec<String> {
        let dev = metered_device(1);
        let cat = catalog(&dev);
        let specs = tenant_plans().into_iter().map(QuerySpec::new).collect();
        let reports = engine::run_queries(&dev, &cat, specs, policy);
        assert!(reports.iter().all(|r| r.result.is_ok()));
        let (om, _) = exports(&dev.metrics_snapshot().expect("metrics recorder is on"));
        om.lines()
            .filter(|l| {
                let name = l.strip_prefix("# TYPE ").unwrap_or(l);
                name.starts_with("operator_") || name.starts_with("tenant_")
            })
            .map(str::to_string)
            .collect()
    };
    let serial = family_lines(Policy::Serial);
    assert!(
        serial.iter().any(|l| l.starts_with("operator_seconds")),
        "operator histograms are present"
    );
    assert!(
        serial
            .iter()
            .any(|l| l.starts_with("tenant_kernel_launches_total")),
        "per-tenant counters are present"
    );
    assert_eq!(
        serial,
        family_lines(Policy::RoundRobin),
        "operator_*/tenant_* families must not depend on the policy"
    );
}

#[test]
fn disabled_metrics_leaves_results_untouched() {
    let run = |metered: bool| {
        let dev = Device::new(DeviceConfig::a100().scaled(8192.0));
        if metered {
            dev.enable_metrics(SimTime::from_secs(INTERVAL));
        }
        let (r, s) = JoinWorkload::wide(1 << 14).generate(&dev);
        let out = gpu_join::joins::run_join(&dev, Algorithm::PhjUm, &r, &s, &JoinConfig::default());
        (out.len(), out.stats.op.total_time(), dev.counters().cycles)
    };
    assert_eq!(
        run(false),
        run(true),
        "metrics must not perturb the simulation"
    );
}

#[test]
fn open_loop_arrivals_respect_the_simulated_clock() {
    let dev = metered_device(1);
    let cat = catalog(&dev);
    let t0 = dev.elapsed().secs();
    // The second arrival lands far beyond the first query's completion, so
    // the device goes idle and must jump its clock to the arrival.
    let gap = 1.0;
    let arrivals = vec![
        OpenQuery::new(
            SimTime::from_secs(t0),
            "now",
            QuerySpec::new(tenant_plans().remove(0)),
        ),
        OpenQuery::new(
            SimTime::from_secs(t0 + gap),
            "later",
            QuerySpec::new(tenant_plans().remove(1)),
        ),
    ];
    let reports = engine::run_open_loop(&dev, &cat, arrivals, Policy::Serial);
    for r in &reports {
        assert!(r.result.is_ok());
        assert!(
            r.admitted.secs() >= r.arrival.secs(),
            "q{}: admitted before it arrived",
            r.query
        );
        assert!(
            r.completion.secs() > r.admitted.secs(),
            "q{}: completed before admission",
            r.query
        );
    }
    assert!(
        reports[0].completion.secs() < t0 + gap,
        "first query finishes long before the second arrives"
    );
    assert!(
        reports[1].admitted.secs() >= t0 + gap,
        "idle clock advance must not admit ahead of the arrival"
    );
    assert!(
        dev.elapsed().secs() >= t0 + gap,
        "device clock jumped over the idle gap"
    );
    // The lifecycle records mirror the report timestamps.
    let snap = dev.metrics_snapshot().expect("metrics recorder is on");
    assert_eq!(snap.lifecycles.len(), 2);
    for (l, r) in snap.lifecycles.iter().zip(&reports) {
        assert_eq!(l.query, r.query);
        assert_eq!(l.arrival_secs, r.arrival.secs());
        assert_eq!(l.completion_secs, r.completion.secs());
    }
}

#[test]
fn cumulative_series_are_monotone() {
    let dev = metered_device(1);
    let cat = catalog(&dev);
    let specs = tenant_plans().into_iter().map(QuerySpec::new).collect();
    let reports = engine::run_queries(&dev, &cat, specs, Policy::RoundRobin);
    assert!(reports.iter().all(|r| r.result.is_ok()));
    let snap = dev.metrics_snapshot().expect("metrics recorder is on");
    let totals: Vec<_> = snap
        .series
        .iter()
        .filter(|s| s.name.ends_with("_total"))
        .collect();
    assert!(!totals.is_empty(), "sampler emitted cumulative series");
    for s in totals {
        for w in s.points.windows(2) {
            assert!(
                w[0].0 < w[1].0 && w[0].1 <= w[1].1,
                "{}: series must be strictly ordered in time and non-decreasing in value",
                s.name
            );
        }
    }
}
