//! Run TPC-H-shaped query plans end to end on the simulated GPU through the
//! `engine` crate: scan → filter → join → aggregate, with the join
//! implementation chosen by the paper's Figure 18 decision tree, and a
//! per-node simulated-time breakdown.
//!
//! ```text
//! cargo run --release --example query_engine [orders]
//! ```

use gpu_join::engine::demo::{q18_like, q1_like, q3_like, tpch_mini};
use gpu_join::engine::execute;
use gpu_join::prelude::*;

fn main() {
    let orders: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(1 << 18);
    // Paper-regime scaled device (see quickstart.rs).
    let exec = Executor::with_config(DeviceConfig::a100().scaled(64.0));
    let dev = exec.device();
    let catalog = tpch_mini(dev, orders, 2026);
    println!(
        "catalog: {} orders, ~{} lineitems, {} customers\n",
        orders,
        orders * 4,
        (orders / 10).max(1)
    );

    for (name, plan) in [
        ("Q1-like (filter + group by)", q1_like()),
        ("Q3-like (two joins + group by)", q3_like()),
        ("Q18-like (join + group by + having)", q18_like()),
    ] {
        let out = execute(dev, &catalog, &plan).expect("demo plans bind");
        println!("=== {name} ===");
        println!(
            "{} rows out in {} simulated device time",
            out.table.num_rows(),
            out.stats.total_time()
        );
        print!("{}", out.stats.render());
        println!();
    }
}
