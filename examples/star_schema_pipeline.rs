//! Sequences of joins over a star schema (the Figure 16 experiment shape):
//! a fact table with N foreign keys joined against N dimension tables,
//! materializing one more dimension payload at every step.
//!
//! ```text
//! cargo run --release --example star_schema_pipeline [num_joins]
//! ```

use gpu_join::prelude::*;
use gpu_join::workloads::star::star_schema;

fn main() {
    let num_joins: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(4);
    // Paper-regime scaled A100 (see quickstart.rs).
    let exec = Executor::with_config(DeviceConfig::a100().scaled(128.0));
    let dev = exec.device();

    let fact_rows = 1 << 20;
    let dim_rows = 1 << 18;
    let (fact, dims) = star_schema(dev, fact_rows, dim_rows, num_joins, 42);
    println!(
        "star schema: |F| = {} with {} FKs, |D_i| = {}\n",
        fact_rows, num_joins, dim_rows
    );

    println!(
        "{:<12} {:>12} {:>14} {:>10}",
        "algorithm", "total", "Mtuples/s", "rows out"
    );
    let input_tuples = fact_rows + num_joins * dim_rows;
    for alg in [
        Algorithm::SmjUm,
        Algorithm::SmjOm,
        Algorithm::PhjUm,
        Algorithm::PhjOm,
    ] {
        let out = join_sequence(dev, &fact, &dims, alg, &JoinConfig::default());
        println!(
            "{:<12} {:>12} {:>14.1} {:>10}",
            alg.name(),
            out.total_time().to_string(),
            input_tuples as f64 / out.total_time().secs() / 1e6,
            out.rows,
        );
        assert_eq!(out.rows, fact_rows, "100% FK match keeps all fact rows");
    }

    // Per-step cost growth for the GFTR hash join: later joins carry more
    // payload columns, so each step gets more expensive.
    let out = join_sequence(dev, &fact, &dims, Algorithm::PhjOm, &JoinConfig::default());
    println!("\nPHJ-OM per-step breakdown:");
    for (i, step) in out.steps.iter().enumerate() {
        println!(
            "  join {}: fk fetch {:>10}, transform {:>10}, match {:>10}, materialize {:>10}",
            i + 1,
            step.fk_fetch.to_string(),
            step.join.phases.transform.to_string(),
            step.join.phases.match_find.to_string(),
            step.join.phases.materialize.to_string(),
        );
    }
}
