//! Quickstart: run the same PK-FK join with all four GPU implementations
//! and the two baselines, and print the per-phase time breakdown.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use gpu_join::prelude::*;
use gpu_join::workloads::JoinWorkload;

fn main() {
    // Paper-regime scaling: the study's headline runs join 2^27 tuples
    // against a 40 MB L2; demoing at 2^20 tuples, we shrink the device's
    // capacity parameters by 2^7 so the data:cache ratio (and therefore the
    // GFUR-vs-GFTR picture) matches the paper. Use `Executor::a100()` for
    // the real hardware parameters.
    let exec = Executor::with_config(DeviceConfig::a100().scaled(128.0));
    let dev = exec.device();

    // A wide join in the paper's default shape: |S| = 2|R|, two 4-byte
    // payload columns per relation, 100% match ratio.
    let workload = JoinWorkload::wide(1 << 20);
    let (r, s) = workload.generate(dev);
    println!(
        "R: {} tuples x {} payload cols, S: {} tuples x {} payload cols ({:.1} MB total)\n",
        r.len(),
        r.num_payloads(),
        s.len(),
        s.num_payloads(),
        workload.total_bytes() as f64 / 1e6,
    );

    println!(
        "{:<12} {:>12} {:>12} {:>12} {:>12} {:>14}",
        "algorithm", "transform", "match", "materialize", "total", "Mtuples/s"
    );
    for alg in [
        Algorithm::SmjUm,
        Algorithm::SmjOm,
        Algorithm::PhjUm,
        Algorithm::PhjOm,
        Algorithm::Nphj,
        Algorithm::CpuRadix,
    ] {
        let out = exec.join(alg, &r, &s, &JoinConfig::default());
        let p = out.stats.phases;
        println!(
            "{:<12} {:>12} {:>12} {:>12} {:>12} {:>14.1}",
            alg.name(),
            p.transform.to_string(),
            p.match_find.to_string(),
            p.materialize.to_string(),
            p.total().to_string(),
            out.stats.throughput_tuples(workload.total_tuples()) / 1e6,
        );
        assert_eq!(out.len(), s.len(), "100% match: every S tuple matches");
    }

    // What would the paper's decision tree have picked?
    let profile = profile_of(&r, &s, 1.0, 0.0, dev.config().l2_bytes);
    let rec = choose_join(&profile);
    println!(
        "\ndecision tree picks {} — {}",
        rec.algorithm, rec.rationale
    );
}
