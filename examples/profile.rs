//! Profile: trace a join → group-by pipeline end to end on the simulated
//! clock and export the timeline for Chrome/Perfetto.
//!
//! ```text
//! cargo run --release --example profile
//! ```
//!
//! Writes `trace.json` (open at <https://ui.perfetto.dev> or
//! `chrome://tracing`) and `trace.jsonl` (one event per line, for jq), and
//! prints the engine's per-operator stats tree next to an nsys-stats-style
//! per-kernel rollup. The timeline shows the operator span on top, the
//! join/group-by algorithm spans below it, the paper's
//! transform/match/materialize phases below those, and every simulated
//! kernel launch on its own track — all on the *simulated* clock, so the
//! trace is deterministic and bit-identical across host thread counts.

use gpu_join::prelude::*;
use gpu_join::sim::trace;
use gpu_join::workloads::JoinWorkload;

fn main() {
    // Same paper-regime scaling as the quickstart: demo at 2^20 tuples
    // with capacity parameters shrunk 2^7 so the data:cache ratio matches
    // the paper's 2^27-tuple headline runs.
    let dev = Device::new(DeviceConfig::a100().scaled(128.0));
    dev.enable_tracing();

    let workload = JoinWorkload::wide(1 << 20);
    let (r, s) = workload.generate(&dev);
    println!(
        "profiling PHJ-UM join + SORT-OM group-by over R={} S={} tuples\n",
        r.len(),
        s.len()
    );

    // Join R ⋈ S with the paper's out-of-place radix join, then group the
    // join output by its key and SUM every surviving payload column.
    let spec = PipelineSpec::new(
        Algorithm::PhjUm,
        GroupKey::JoinKey,
        GroupByAlgorithm::SortGftr,
        &[AggFn::Sum; 4],
    );
    let out = join_then_group_by(&dev, &r, &s, &spec);
    println!(
        "join produced {} rows, aggregation {} groups in {} simulated\n",
        out.join_rows,
        out.groups.len(),
        out.total_time()
    );

    // The engine's per-operator stats tree ...
    println!("== operator tree ==");
    print!("{}", out.stats.render());

    // ... and the trace-derived per-kernel rollup, nsys-stats style.
    let traces: Vec<trace::Trace> = dev.trace_snapshot().into_iter().collect();
    println!("\n== kernel summary ==");
    print!("{}", trace::render_kernel_summary(&traces));

    std::fs::write("trace.json", trace::chrome_trace_json(&traces)).expect("write trace.json");
    std::fs::write("trace.jsonl", trace::jsonl(&traces)).expect("write trace.jsonl");
    println!("\nwrote trace.json (chrome://tracing, ui.perfetto.dev) and trace.jsonl");
}
