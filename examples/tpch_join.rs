//! Run the paper's five TPC-H/TPC-DS join extracts (Table 6) at a reduced
//! scale, comparing all four GPU implementations and showing what the
//! decision tree would have picked.
//!
//! ```text
//! cargo run --release --example tpch_join [scale]
//! ```
//!
//! `scale` is the fraction of the paper's SF10/SF100 row counts (default
//! 0.01 — J2 then probes 600k tuples).

use gpu_join::prelude::*;
use gpu_join::workloads::tpc::{generate, TpcJoinId};

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(0.01);
    // Paper-regime scaled A100: capacity parameters shrink with the chosen
    // fraction of the benchmark scale (see quickstart.rs).
    let exec = Executor::with_config(DeviceConfig::a100().scaled((1.0 / scale).max(1.0)));
    let dev = exec.device();

    for id in TpcJoinId::ALL {
        let inst = generate(dev, id, scale, DType::I32);
        println!(
            "\n{} ({} {}): |R| = {}, |S| = {}, payloads {}+{}",
            inst.spec.id,
            inst.spec.benchmark,
            inst.spec.query,
            inst.r.len(),
            inst.s.len(),
            inst.r.num_payloads(),
            inst.s.num_payloads(),
        );
        let mut best: Option<(Algorithm, SimTime)> = None;
        for alg in Algorithm::GPU_VARIANTS {
            let out = exec.join(alg, &inst.r, &inst.s, &inst.config);
            let t = out.stats.phases.total();
            println!(
                "  {:<8} {:>10}  ({} rows out)",
                alg.name(),
                t.to_string(),
                out.len()
            );
            assert_eq!(out.len(), inst.expected_out);
            if best.is_none_or(|(_, bt)| t < bt) {
                best = Some((alg, t));
            }
        }
        let (best_alg, _) = best.expect("ran at least one algorithm");
        let profile = profile_of(&inst.r, &inst.s, 1.0, 0.0, dev.config().l2_bytes);
        let rec = choose_join(&profile);
        println!(
            "  measured best: {} | decision tree: {}",
            best_alg.name(),
            rec.algorithm.name()
        );
    }
}
