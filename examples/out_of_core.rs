//! Out-of-core joins: a probe relation that does not fit device memory,
//! streamed through in chunks (`joins::chunked`), with the join
//! implementation picked by the sampling estimator + Figure 18 tree.
//!
//! ```text
//! cargo run --release --example out_of_core
//! ```

use gpu_join::heuristics::estimate_profile;
use gpu_join::joins::chunked::{chunked_join, plan_chunks};
use gpu_join::prelude::*;
use gpu_join::workloads::JoinWorkload;

fn main() {
    // A deliberately small device: the inputs fit, but a direct join's
    // working state (output reservation + transformed columns) does not.
    let mut cfg = DeviceConfig::a100().scaled(128.0);
    cfg.global_mem_bytes = 48 << 20;
    let exec = Executor::with_config(cfg);
    let dev = exec.device();

    let w = JoinWorkload {
        s_tuples: 1 << 20,
        ..JoinWorkload::wide(1 << 18)
    };
    let (r, s) = w.generate(dev);
    println!(
        "device memory: {} MB; build side {} KB; probe side {} MB\n",
        dev.config().global_mem_bytes >> 20,
        r.size_bytes() >> 10,
        s.size_bytes() >> 20,
    );

    // Statistics an optimizer would have, estimated from a 512-row sample.
    let profile = estimate_profile(dev, &r, &s, 512);
    let rec = choose_join(&profile);
    println!(
        "estimated match ratio {:.2}, skewed: {} -> decision tree picks {}",
        profile.match_ratio, profile.skewed, rec.algorithm
    );

    let plan = plan_chunks(dev, &r, &s).expect("build side fits");
    println!(
        "chunk plan: {} chunks of {} probe rows\n",
        plan.chunks, plan.chunk_rows
    );

    let (out, plan) = chunked_join(dev, rec.algorithm, &r, &s, &JoinConfig::default());
    println!(
        "joined {} rows in {} simulated time across {} chunks (peak {} MB of {} MB)",
        out.len(),
        out.stats.phases.total(),
        plan.chunks,
        out.stats.peak_mem_bytes >> 20,
        dev.config().global_mem_bytes >> 20,
    );
    assert_eq!(out.len(), s.len(), "100% match ratio");
    assert!(out.stats.peak_mem_bytes <= dev.config().global_mem_bytes);
}
