//! The paper's motivating scenario (Section 1): relational preprocessing on
//! the GPU as part of an ML pipeline. Feature augmentation joins a samples
//! table against a features table *without any filtering* — a 100% match
//! ratio, many payload columns, everything materialized because the result
//! feeds a training job on the same device.
//!
//! The example compares GFUR vs GFTR end to end, then computes per-label
//! feature statistics with a grouped aggregation.
//!
//! ```text
//! cargo run --release --example ml_preprocessing
//! ```

use gpu_join::pipeline::GroupKey;
use gpu_join::prelude::*;
use rand::{Rng, SeedableRng};

fn main() {
    // Paper-regime scaled A100 (see quickstart.rs): 2^21 samples against a
    // proportionally shrunken L2 puts us in the paper's cache regime.
    let exec = Executor::with_config(DeviceConfig::a100().scaled(64.0));
    let dev = exec.device();
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);

    // samples(entity_id, label) — 2M training rows referencing 1M entities.
    let n_entities = 1 << 20;
    let n_samples = 1 << 21;
    let entity_ids: Vec<i32> = {
        let mut ids: Vec<i32> = (0..n_entities).collect();
        use rand::seq::SliceRandom;
        ids.shuffle(&mut rng);
        ids
    };
    // features(entity_id, f1..f4): four feature columns to merge in.
    let features = Relation::new(
        "features",
        Column::from_i32(dev, entity_ids.clone(), "entity_id"),
        (0..4)
            .map(|f| {
                Column::from_i32(
                    dev,
                    entity_ids.iter().map(|&e| e.wrapping_mul(13 + f)).collect(),
                    "feature",
                )
            })
            .collect(),
    );
    let sample_refs: Vec<i32> = (0..n_samples)
        .map(|_| rng.gen_range(0..n_entities))
        .collect();
    let samples = Relation::new(
        "samples",
        Column::from_i32(dev, sample_refs.clone(), "entity_id"),
        vec![Column::from_i32(
            dev,
            sample_refs.iter().map(|&e| e % 16).collect(), // 16 labels
            "label",
        )],
    );

    println!(
        "feature augmentation: samples ({} rows) ⋈ features ({} rows, 4 feature cols)\n",
        n_samples, n_entities
    );
    for alg in [Algorithm::PhjUm, Algorithm::PhjOm] {
        let out = exec.join(alg, &features, &samples, &JoinConfig::default());
        println!(
            "{:<8} total {:>10}   (materialization share {:>4.0}%)",
            alg.name(),
            out.stats.phases.total().to_string(),
            out.stats.phases.materialize_fraction() * 100.0,
        );
    }

    // The decision tree agrees this is GFTR territory: wide join, full
    // match ratio, uniform keys.
    let profile = profile_of(&features, &samples, 1.0, 0.0, dev.config().l2_bytes);
    let rec = choose_join(&profile);
    println!("\ndecision tree: {} — {}\n", rec.algorithm, rec.rationale);

    // Downstream of the join: per-label statistics over the first feature
    // (a grouped aggregation on the augmented table).
    let stats = join_then_group_by(
        dev,
        &features,
        &samples,
        &PipelineSpec::new(
            rec.algorithm,
            GroupKey::SPayload(0), // group by label
            GroupByAlgorithm::PartitionedGftr,
            &[
                AggFn::Count, // join key column (entity id) -> row count per label
                AggFn::Sum,   // f1
                AggFn::Min,   // f2
                AggFn::Max,   // f3
                AggFn::Sum,   // f4
            ],
        ),
    );
    println!(
        "per-label stats: {} labels from {} augmented rows in {}",
        stats.groups.len(),
        stats.join_rows,
        stats.total_time(),
    );
    assert_eq!(stats.groups.len(), 16);
}
