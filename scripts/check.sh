#!/usr/bin/env bash
# Repo-wide checks: formatting, lints (warnings are errors), full test suite.
# Run from anywhere; CI runs exactly this script.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> cargo test -q"
cargo test -q

echo "All checks passed."
