#!/usr/bin/env bash
# Repo-wide checks: formatting, lints (warnings are errors), docs (warnings
# are errors), full test suite, and a tiny-scale smoke-run of the whole
# experiment suite. Run from anywhere; CI runs exactly this script.
set -euo pipefail
cd "$(dirname "$0")/.."
repo_dir="$PWD"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> cargo doc --no-deps (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> cargo test -q"
cargo test -q

echo "==> multi-query scheduler suite"
# Already part of the full run above, but named here so a scheduler
# regression fails loudly under its own heading.
cargo test -q -p gpu-join \
    --test scheduler_equivalence --test scheduler_fairness \
    --test failure_injection --test trace_invariants --test metrics_invariants

echo "==> serving-control property suite (admission, queueing, plan cache)"
# The scheduling-policy property suite: work conservation, shed-only-when-
# full, SJF ordering, plan-cache byte-identity, export byte-identity across
# host threads under every policy.
cargo test -q -p gpu-join --test admission_invariants

echo "==> bench smoke-run (run_all --scale 14)"
# run_all writes results/ into the cwd; run from a scratch dir so the
# checked-in results/ stays untouched.
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
if ! (cd "$smoke_dir" \
    && cargo run --release --quiet --manifest-path "$repo_dir/Cargo.toml" \
        -p bench --bin run_all -- --scale 14 --reps 1 --trace trace.json \
        --explain explain.json >run_all.log 2>&1); then
    echo "bench smoke-run failed; tail of log:"
    tail -40 "$smoke_dir/run_all.log"
    exit 1
fi
test -s "$smoke_dir/results/summary.md" || {
    echo "bench smoke-run produced no summary.md"
    exit 1
}
for json in "$smoke_dir"/results/*.json; do
    grep -q '"rows"' "$json" || {
        echo "bench smoke-run: $(basename "$json") has no rows"
        exit 1
    }
done
echo "    $(ls "$smoke_dir/results" | wc -l) result files, all with rows"

# Operator fusion must pay for itself in the smoke run: at every swept
# selectivity the fused plan launches strictly fewer kernels than the
# unfused ablation baseline (the DRAM-saving floor is asserted inside the
# experiment itself).
fusion_json="$smoke_dir/results/ablation_fusion.json"
test -s "$fusion_json" || {
    echo "bench smoke-run produced no ablation_fusion.json"
    exit 1
}
if command -v jq >/dev/null 2>&1; then
    fusion_bad=$(jq '[.rows[] | select(.fused_launches >= .unfused_launches)] | length' \
        "$fusion_json")
else
    fusion_bad=$(python3 -c "
import json, sys
rows = json.load(open(sys.argv[1]))['rows']
print(sum(1 for r in rows if r['fused_launches'] >= r['unfused_launches']))" \
        "$fusion_json")
fi
[ "$fusion_bad" -eq 0 ] || {
    echo "ablation_fusion: $fusion_bad row(s) where fusion does not launch fewer kernels"
    exit 1
}
echo "    ablation_fusion: fused plans launch fewer kernels at every selectivity"

# The --trace export must be valid, non-empty Chrome trace JSON (and the
# JSONL sibling non-empty too).
test -s "$smoke_dir/trace.json" || {
    echo "bench smoke-run produced no trace.json"
    exit 1
}
test -s "$smoke_dir/trace.jsonl" || {
    echo "bench smoke-run produced no trace.jsonl"
    exit 1
}
if command -v jq >/dev/null 2>&1; then
    events=$(jq '.traceEvents | length' "$smoke_dir/trace.json")
else
    events=$(python3 -c \
        "import json,sys; print(len(json.load(open(sys.argv[1]))['traceEvents']))" \
        "$smoke_dir/trace.json")
fi
[ "$events" -gt 0 ] || {
    echo "trace.json parsed but has no traceEvents"
    exit 1
}
echo "    trace.json valid with $events events"

# The --explain export must be valid JSON with recorded queries and the
# per-kernel roofline analysis.
test -s "$smoke_dir/explain.json" || {
    echo "bench smoke-run produced no explain.json"
    exit 1
}
if command -v jq >/dev/null 2>&1; then
    explain_queries=$(jq '.queries | length' "$smoke_dir/explain.json")
    explain_kernels=$(jq '.kernels | length' "$smoke_dir/explain.json")
else
    explain_queries=$(python3 -c \
        "import json,sys; print(len(json.load(open(sys.argv[1]))['queries']))" \
        "$smoke_dir/explain.json")
    explain_kernels=$(python3 -c \
        "import json,sys; print(len(json.load(open(sys.argv[1]))['kernels']))" \
        "$smoke_dir/explain.json")
fi
[ "$explain_queries" -gt 0 ] || {
    echo "explain.json parsed but records no queries"
    exit 1
}
[ "$explain_kernels" -gt 0 ] || {
    echo "explain.json parsed but has no kernel analysis"
    exit 1
}
echo "    explain.json valid with $explain_queries queries, $explain_kernels kernels"

echo "==> perf-regression gate (vs results/smoke14)"
# Simulated numbers are deterministic, so the smoke results must match the
# checked-in baselines to 1%; wall-clock (CPU) fields are exempt. A
# deliberate cost-model change updates results/smoke14/ in the same commit.
cargo run --release --quiet -p bench --bin bench_gate -- \
    --baseline "$repo_dir/results/smoke14" --fresh "$smoke_dir/results"

echo "==> multi-query smoke (m01_multi_query --scale 14)"
(cd "$smoke_dir" \
    && cargo run --release --quiet --manifest-path "$repo_dir/Cargo.toml" \
        -p bench --bin m01_multi_query -- --scale 14 --reps 1 >m01.log 2>&1) || {
    echo "m01_multi_query smoke failed; tail of log:"
    tail -40 "$smoke_dir/m01.log"
    exit 1
}
grep -q "budgets hold" "$smoke_dir/m01.log" || {
    echo "m01_multi_query smoke: missing budget finding in output"
    exit 1
}
echo "==> SQL frontend smoke (q_tpch --scale 14)"
(cd "$smoke_dir" \
    && cargo run --release --quiet --manifest-path "$repo_dir/Cargo.toml" \
        -p bench --bin q_tpch -- --scale 14 --reps 1 \
        --explain q_tpch_explain.json >q_tpch.log 2>&1) || {
    echo "q_tpch smoke failed; tail of log:"
    tail -40 "$smoke_dir/q_tpch.log"
    exit 1
}
# The lowering must print its composite-key decisions and both queries
# must execute (fused == unfused is asserted inside the binary).
grep -q "GROUP BY (o_orderkey, o_orderdate, o_shippriority): PACK" \
    "$smoke_dir/q_tpch.log" || {
    echo "q_tpch smoke: Q3 composite GROUP BY decision missing from output"
    exit 1
}
grep -q "ORDER BY (revenue desc, o_orderdate): PACK" "$smoke_dir/q_tpch.log" || {
    echo "q_tpch smoke: Q3 packed ORDER BY decision missing from output"
    exit 1
}
# Its --explain export must be valid JSON recording both queries.
python3 - "$smoke_dir/q_tpch_explain.json" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
names = [q["query"] for q in doc["queries"]]
assert "q_tpch Q3" in names and "q_tpch Q18" in names, names
assert doc["kernels"], "no kernel analysis"
for q in doc["queries"]:
    assert q["tree"].strip(), f"{q['query']}: empty plan tree"
PY
echo "    q_tpch: Q3/Q18 from SQL, composite decisions printed, explain JSON valid"

echo "==> serving smoke (m02_serving --scale 14 --metrics)"
(cd "$smoke_dir" \
    && cargo run --release --quiet --manifest-path "$repo_dir/Cargo.toml" \
        -p bench --bin m02_serving -- --scale 14 --reps 1 \
        --metrics metrics.json >m02.log 2>&1) || {
    echo "m02_serving smoke failed; tail of log:"
    tail -40 "$smoke_dir/m02.log"
    exit 1
}
grep -q "saturates at the calibrated capacity" "$smoke_dir/m02.log" || {
    echo "m02_serving smoke: missing saturation finding in output"
    exit 1
}
# The --metrics exports must parse (JSON and OpenMetrics), and every
# cumulative series/counter must be monotone: totals never decrease across
# samples, and histogram bucket counts are cumulative in `le`.
test -s "$smoke_dir/metrics.json" || {
    echo "m02_serving smoke produced no metrics.json"
    exit 1
}
test -s "$smoke_dir/metrics.om" || {
    echo "m02_serving smoke produced no metrics.om"
    exit 1
}
python3 - "$smoke_dir/metrics.json" "$smoke_dir/metrics.om" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["devices"], "metrics.json records no devices"
for dev in doc["devices"]:
    for s in dev["series"]:
        ts = [p[0] for p in s["points"]]
        assert ts == sorted(ts), f"{s['name']}: unsorted timestamps"
        if s["name"].endswith("_total"):
            vs = [p[1] for p in s["points"]]
            assert vs == sorted(vs), f"{s['name']}: cumulative series decreased"
    for h in dev["histograms"]:
        counts = [b["count"] for b in h["buckets"]]
        assert sum(counts) == h["count"], f"{h['name']}: bucket counts != count"
om = open(sys.argv[2]).read()
assert om.endswith("# EOF\n"), "OpenMetrics export must end with # EOF"
lines = [l for l in om.splitlines() if l and not l.startswith("#")]
assert lines, "OpenMetrics export has no samples"
for l in lines:
    float(l.rsplit(" ", 1)[1])  # every sample line ends with a number
# Cumulative _bucket counts must be non-decreasing within each labelset.
from collections import defaultdict
buckets = defaultdict(list)
for l in lines:
    name_labels, value = l.rsplit(" ", 1)
    if "_bucket{" in name_labels:
        key = name_labels.split(",le=")[0]
        buckets[key].append(float(value))
assert buckets, "no histogram bucket samples"
for key, vs in buckets.items():
    assert vs == sorted(vs), f"{key}: non-cumulative bucket counts"
print(f"    metrics exports valid: {len(doc['devices'])} devices, "
      f"{len(lines)} OpenMetrics samples, cumulative series monotone")
PY

echo "==> admission smoke (m03_admission --scale 14 --metrics --explain)"
(cd "$smoke_dir" \
    && cargo run --release --quiet --manifest-path "$repo_dir/Cargo.toml" \
        -p bench --bin m03_admission -- --scale 14 --reps 1 \
        --metrics metrics_m03.json --explain explain_m03.json \
        >m03.log 2>&1) || {
    echo "m03_admission smoke failed; tail of log:"
    tail -40 "$smoke_dir/m03.log"
    exit 1
}
# The three headline findings: the SJF p99 win at equal goodput, the
# shed/reject accounting, and the plan-cache hit rates.
grep -q "SJF cuts the short class's p99" "$smoke_dir/m03.log" || {
    echo "m03_admission smoke: missing SJF-vs-FIFO finding in output"
    exit 1
}
grep -q "rejects both doomed arrivals" "$smoke_dir/m03.log" || {
    echo "m03_admission smoke: missing admission-control finding in output"
    exit 1
}
grep -q "plan cache sized for the mix" "$smoke_dir/m03.log" || {
    echo "m03_admission smoke: missing plan-cache finding in output"
    exit 1
}
# The --metrics export must carry the admission and plan-cache counter
# families with the exact totals the experiment asserts on its reports.
test -s "$smoke_dir/metrics_m03.json" || {
    echo "m03_admission smoke produced no metrics_m03.json"
    exit 1
}
python3 - "$smoke_dir/metrics_m03.json" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
totals = {}
for dev in doc["devices"]:
    for c in dev["counters"]:
        key = (c["name"], tuple(sorted(c.get("labels", {}).items())))
        totals[key] = totals.get(key, 0) + c["value"]
def total(name, **labels):
    return totals.get((name, tuple(sorted(labels.items()))), 0)
assert total("query_shed_total", **{"class": "burst"}) == 7, totals
assert total("query_rejected_total", **{"class": "doomed"}) == 2, totals
assert total("query_completed_total", **{"class": "burst"}) == 3, totals
hits = total("plan_cache_hits_total")
misses = total("plan_cache_misses_total")
evictions = total("plan_cache_evictions_total")
assert (hits, misses, evictions) == (9, 15, 10), (hits, misses, evictions)
print(f"    metrics_m03 valid: shed 7 / rejected 2 / completed 3, "
      f"cache {hits} hits / {misses} misses / {evictions} evictions")
PY
# The --explain export must record the cache-hit query with its cache
# provenance line.
python3 - "$smoke_dir/explain_m03.json" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
hit = [q for q in doc["queries"] if q["query"] == "m03 q18 (plan cache hit)"]
assert hit, [q["query"] for q in doc["queries"]]
assert "plan cache: hit" in hit[0]["tree"], hit[0]["tree"]
assert doc["kernels"], "no kernel analysis"
print("    explain_m03 valid: cache-hit EXPLAIN carries its provenance line")
PY

echo "==> SLO smoke (m04_slo --scale 14 --trace --metrics --digest)"
(cd "$smoke_dir" \
    && cargo run --release --quiet --manifest-path "$repo_dir/Cargo.toml" \
        -p bench --bin m04_slo -- --scale 14 --reps 1 \
        --trace trace_m04.json --metrics metrics_m04.json \
        --digest digest.json >m04.log 2>&1) || {
    echo "m04_slo smoke failed; tail of log:"
    tail -40 "$smoke_dir/m04.log"
    exit 1
}
# The headline finding: slow-query attribution flips from execution to
# queueing as offered load crosses the calibrated capacity.
grep -q "attribution flips execute->queue across capacity" \
    "$smoke_dir/m04.log" || {
    echo "m04_slo smoke: missing attribution-flip finding in output"
    exit 1
}
# The --digest export must parse, every slow-query attribution must
# partition its query's latency exactly, the reported dominant stage must
# match the attribution, the saturated step must blame the queue, and the
# SLO counters in the metrics export must account every completed query.
test -s "$smoke_dir/digest.json" || {
    echo "m04_slo smoke produced no digest.json"
    exit 1
}
test -s "$smoke_dir/digest.txt" || {
    echo "m04_slo smoke produced no digest.txt"
    exit 1
}
python3 - "$smoke_dir/digest.json" "$smoke_dir/metrics_m04.json" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
sections = doc["sections"]
assert sections, "digest.json records no sections"
stages = {"queue": "queue_ns", "planning": "planning_ns",
          "exec": "exec_ns", "interference": "interference_ns"}
slow_total = 0
for sec in sections:
    d = sec["digest"]
    assert d["queries"] > 0, f"{sec['label']}: no completed queries"
    for r in d["slow"]:
        a = r["attribution"]
        total = sum(a[k] for k in stages.values())
        assert total == r["latency_ns"], (
            f"{sec['label']} q{r['query']}: attribution {total} != "
            f"latency {r['latency_ns']}")
        assert a[stages[r["dominant_stage"]]] == max(a.values()), (
            f"{sec['label']} q{r['query']}: dominant stage "
            f"{r['dominant_stage']} is not the attribution max")
    slow_total += len(d["slow"])
assert slow_total > 0, "no slow queries across the whole sweep"
worst = sections[-1]["digest"]["slow"]
assert worst and worst[0]["dominant_stage"] == "queue", (
    "saturated step must pin the worst miss on the queue")
mdoc = json.load(open(sys.argv[2]))
checked = 0
for dev in mdoc["devices"]:
    tot = {}
    for c in dev["counters"]:
        key = (c["name"], tuple(sorted(c.get("labels", {}).items())))
        tot[key] = tot.get(key, 0) + c["value"]
    for (name, labels), v in list(tot.items()):
        if name != "slo_met_total":
            continue
        missed = tot.get(("slo_missed_total", labels), 0)
        done = tot.get(("query_completed_total", labels), 0)
        assert v + missed == done, (name, labels, v, missed, done)
        checked += 1
assert checked > 0, "metrics_m04.json carries no per-class SLO counters"
print(f"    digest valid: {len(sections)} sections, {slow_total} slow queries, "
      f"attributions exact, SLO counters account {checked} classes")
PY

# Keep the smoke trace, explain report and fresh results where CI can pick
# them up as artifacts (and where `bench_gate`'s default --fresh finds them).
mkdir -p "$repo_dir/target/smoke"
cp "$smoke_dir/trace.json" "$smoke_dir/trace.jsonl" "$smoke_dir/explain.json" \
    "$smoke_dir/metrics.json" "$smoke_dir/metrics.om" \
    "$smoke_dir/digest.json" "$smoke_dir/digest.txt" \
    "$repo_dir/target/smoke/"
rm -rf "$repo_dir/target/smoke/results"
cp -r "$smoke_dir/results" "$repo_dir/target/smoke/results"

echo "All checks passed."
