#!/usr/bin/env bash
# Regression-diff the experiment suite against the checked-in baselines.
#
#   scripts/bench_diff.sh [--scale LOG2] [--tol FRACTION]
#
# Re-runs run_all into a scratch dir (never touching the tracked results/)
# and compares every produced report against results/ with bench_diff,
# printing a per-figure drift table. Exits nonzero when any figure drifts
# beyond the tolerance. The baselines are recorded at --scale 22; diffing
# at another scale fails structurally (scale_log2 is part of the report),
# which is the honest answer — re-record baselines instead.
set -euo pipefail
cd "$(dirname "$0")/.."
repo_dir="$PWD"

scale=22
tol=0.05
while [ $# -gt 0 ]; do
    case "$1" in
        --scale) scale="$2"; shift 2 ;;
        --tol) tol="$2"; shift 2 ;;
        *) echo "usage: scripts/bench_diff.sh [--scale LOG2] [--tol FRACTION]" >&2; exit 2 ;;
    esac
done

cargo build --release --quiet -p bench --bin run_all --bin bench_diff

fresh_dir="$(mktemp -d)"
trap 'rm -rf "$fresh_dir"' EXIT
echo "==> fresh run_all --scale $scale (into $fresh_dir)"
if ! (cd "$fresh_dir" && "$repo_dir/target/release/run_all" --scale "$scale" >run_all.log 2>&1); then
    echo "fresh run_all failed; tail of log:"
    tail -40 "$fresh_dir/run_all.log"
    exit 1
fi

echo "==> bench_diff vs checked-in results/ (tol $tol)"
"$repo_dir/target/release/bench_diff" \
    --baseline "$repo_dir/results" --fresh "$fresh_dir/results" --tol "$tol"
